#include "features/features.hh"

#include <algorithm>

#include "util/logging.hh"

namespace misam {

namespace {

constexpr std::array<const char *, kNumFeatures> feature_names = {
    "A_rows",
    "A_cols",
    "A_nonzeroes",
    "A_sparsity",
    "A_nnz_row_mean",
    "A_nnz_row_var",
    "A_nnz_col_mean",
    "A_nnz_col_var",
    "A_load_imbalance_row",
    "A_load_imbalance_col",
    "row_B",
    "col_B",
    "B_nonzeroes",
    "B_sparsity",
    "B_nnz_row_mean",
    "B_nnz_row_var",
    "B_nnz_col_mean",
    "B_nnz_col_var",
    "B_load_imbalance_row",
    "B_load_imbalance_col",
    "Tile_1D_Density",
    "Tile_1D_Count",
    "Tile_2D_Density",
    "Tile_2D_Count",
    "A_Tile_1D_Density",
    "A_Tile_1D_Count",
    "A_Tile_2D_Density",
    "A_Tile_2D_Count",
};

AxisStats
statsFromCounts(const std::vector<Offset> &counts)
{
    AxisStats s;
    if (counts.empty())
        return s;
    double sum = 0.0;
    Offset max_count = 0;
    for (Offset c : counts) {
        sum += static_cast<double>(c);
        max_count = std::max(max_count, c);
    }
    s.mean = sum / static_cast<double>(counts.size());
    double sq = 0.0;
    for (Offset c : counts) {
        const double d = static_cast<double>(c) - s.mean;
        sq += d * d;
    }
    s.var = sq / static_cast<double>(counts.size());
    s.imbalance =
        s.mean > 0.0 ? static_cast<double>(max_count) / s.mean : 1.0;
    return s;
}

} // namespace

const char *
featureName(FeatureId id)
{
    return featureName(static_cast<std::size_t>(id));
}

const char *
featureName(std::size_t index)
{
    if (index >= kNumFeatures)
        panic("featureName: index ", index, " out of range");
    return feature_names[index];
}

std::vector<double>
FeatureVector::toVector() const
{
    return {values.begin(), values.end()};
}

MatrixStats
computeMatrixStats(const CsrMatrix &m)
{
    std::vector<Offset> row_counts(m.rows());
    for (Index r = 0; r < m.rows(); ++r)
        row_counts[r] = m.rowNnz(r);

    std::vector<Offset> col_counts(m.cols(), 0);
    for (Index c : m.colIdx())
        ++col_counts[c];

    return {statsFromCounts(row_counts), statsFromCounts(col_counts)};
}

TileStats
computeTileStats1D(const CsrMatrix &m, Index tile_rows)
{
    if (tile_rows == 0)
        fatal("computeTileStats1D: tile_rows must be positive");
    TileStats out;
    if (m.rows() == 0 || m.cols() == 0)
        return out;

    const Index n_tiles = (m.rows() + tile_rows - 1) / tile_rows;
    double density_sum = 0.0;
    Offset nonempty = 0;
    for (Index t = 0; t < n_tiles; ++t) {
        const Index r_lo = t * tile_rows;
        const Index r_hi = std::min<Index>(r_lo + tile_rows, m.rows());
        const Offset nnz = m.rowPtr()[r_hi] - m.rowPtr()[r_lo];
        if (nnz == 0)
            continue;
        const double area =
            static_cast<double>(r_hi - r_lo) * static_cast<double>(m.cols());
        density_sum += static_cast<double>(nnz) / area;
        ++nonempty;
    }
    if (nonempty > 0)
        out.mean_density = density_sum / static_cast<double>(nonempty);
    out.nonempty_tiles = static_cast<double>(nonempty);
    return out;
}

TileStats
computeTileStats2D(const CsrMatrix &m, Index tile_rows, Index tile_cols)
{
    if (tile_rows == 0 || tile_cols == 0)
        fatal("computeTileStats2D: tile dimensions must be positive");
    TileStats out;
    if (m.rows() == 0 || m.cols() == 0)
        return out;

    const Index col_tiles = (m.cols() + tile_cols - 1) / tile_cols;
    const Index row_tiles = (m.rows() + tile_rows - 1) / tile_rows;

    // Count nonzeros per 2D tile in one O(nnz) pass over CSR. Tiles are
    // indexed (row_tile * col_tiles + col_tile).
    std::vector<Offset> tile_nnz(
        static_cast<std::size_t>(col_tiles) * row_tiles, 0);
    for (Index r = 0; r < m.rows(); ++r) {
        const std::size_t base =
            static_cast<std::size_t>(r / tile_rows) * col_tiles;
        for (Index c : m.rowCols(r))
            ++tile_nnz[base + c / tile_cols];
    }

    double density_sum = 0.0;
    Offset nonempty = 0;
    for (Index rt = 0; rt < row_tiles; ++rt) {
        const Index r_lo = rt * tile_rows;
        const Index r_hi = std::min<Index>(r_lo + tile_rows, m.rows());
        for (Index ct = 0; ct < col_tiles; ++ct) {
            const Offset nnz =
                tile_nnz[static_cast<std::size_t>(rt) * col_tiles + ct];
            if (nnz == 0)
                continue;
            const Index c_lo = ct * tile_cols;
            const Index c_hi = std::min<Index>(c_lo + tile_cols, m.cols());
            const double area = static_cast<double>(r_hi - r_lo) *
                                static_cast<double>(c_hi - c_lo);
            density_sum += static_cast<double>(nnz) / area;
            ++nonempty;
        }
    }
    if (nonempty > 0)
        out.mean_density = density_sum / static_cast<double>(nonempty);
    out.nonempty_tiles = static_cast<double>(nonempty);
    return out;
}

namespace {

/** All single-matrix features, computed together. */
struct MatrixFeatures
{
    MatrixStats stats;
    TileStats tile1d;
    TileStats tile2d;
};

/**
 * Fused single-pass extraction. Row statistics and 1D tile statistics
 * come from the row-pointer array alone (O(rows)); column counts and 2D
 * tile occupancy share one pass over the column indices. Fully dense
 * matrices short-circuit to closed forms — no per-nonzero work at all —
 * which is what keeps preprocessing cheap on the (dense-B) SpMM
 * workloads.
 */
MatrixFeatures
extractMatrixFeatures(const CsrMatrix &m, const FeatureTileConfig &cfg)
{
    MatrixFeatures out;
    if (m.rows() == 0 || m.cols() == 0)
        return out;

    const Index row_tiles = (m.rows() + cfg.tile_rows - 1) / cfg.tile_rows;
    const Index col_tiles = (m.cols() + cfg.tile_cols - 1) / cfg.tile_cols;

    const bool dense =
        m.nnz() == static_cast<Offset>(m.rows()) * m.cols();
    if (dense) {
        out.stats.row = {static_cast<double>(m.cols()), 0.0, 1.0};
        out.stats.col = {static_cast<double>(m.rows()), 0.0, 1.0};
        out.tile1d = {1.0, static_cast<double>(row_tiles)};
        out.tile2d = {1.0, static_cast<double>(row_tiles) * col_tiles};
        return out;
    }

    // Row stats + 1D tiles from rowPtr offsets only.
    {
        std::vector<Offset> row_counts(m.rows());
        for (Index r = 0; r < m.rows(); ++r)
            row_counts[r] = m.rowNnz(r);
        out.stats.row = statsFromCounts(row_counts);
    }
    out.tile1d = computeTileStats1D(m, cfg.tile_rows);

    // One fused pass over the column indices: per-column counts and
    // per-2D-tile occupancy together.
    std::vector<Offset> col_counts(m.cols(), 0);
    std::vector<Offset> tile_nnz(
        static_cast<std::size_t>(row_tiles) * col_tiles, 0);
    for (Index r = 0; r < m.rows(); ++r) {
        const std::size_t base =
            static_cast<std::size_t>(r / cfg.tile_rows) * col_tiles;
        for (Index c : m.rowCols(r)) {
            ++col_counts[c];
            ++tile_nnz[base + c / cfg.tile_cols];
        }
    }
    out.stats.col = statsFromCounts(col_counts);

    double density_sum = 0.0;
    Offset nonempty = 0;
    for (Index rt = 0; rt < row_tiles; ++rt) {
        const Index r_lo = rt * cfg.tile_rows;
        const Index r_hi =
            std::min<Index>(r_lo + cfg.tile_rows, m.rows());
        for (Index ct = 0; ct < col_tiles; ++ct) {
            const Offset nnz =
                tile_nnz[static_cast<std::size_t>(rt) * col_tiles + ct];
            if (nnz == 0)
                continue;
            const Index c_lo = ct * cfg.tile_cols;
            const Index c_hi =
                std::min<Index>(c_lo + cfg.tile_cols, m.cols());
            const double area = static_cast<double>(r_hi - r_lo) *
                                static_cast<double>(c_hi - c_lo);
            density_sum += static_cast<double>(nnz) / area;
            ++nonempty;
        }
    }
    if (nonempty > 0)
        out.tile2d.mean_density =
            density_sum / static_cast<double>(nonempty);
    out.tile2d.nonempty_tiles = static_cast<double>(nonempty);
    return out;
}

} // namespace

MatrixFeatureSummary
summarizeMatrix(const CsrMatrix &m, const FeatureTileConfig &cfg)
{
    const MatrixFeatures mf = extractMatrixFeatures(m, cfg);
    return {m.rows(), m.cols(), m.nnz(), mf.stats, mf.tile1d, mf.tile2d};
}

FeatureVector
combineFeatures(const MatrixFeatureSummary &a,
                const MatrixFeatureSummary &b)
{
    if (a.cols != b.rows)
        panic("combineFeatures: dimension mismatch, A cols ", a.cols,
              " vs B rows ", b.rows);

    auto density = [](const MatrixFeatureSummary &s) {
        if (s.rows == 0 || s.cols == 0)
            return 0.0;
        return static_cast<double>(s.nnz) /
               (static_cast<double>(s.rows) * static_cast<double>(s.cols));
    };

    FeatureVector f;
    f[FeatureId::ARows] = a.rows;
    f[FeatureId::ACols] = a.cols;
    f[FeatureId::ANnz] = static_cast<double>(a.nnz);
    f[FeatureId::ASparsity] = 1.0 - density(a);
    f[FeatureId::ANnzRowMean] = a.stats.row.mean;
    f[FeatureId::ANnzRowVar] = a.stats.row.var;
    f[FeatureId::ANnzColMean] = a.stats.col.mean;
    f[FeatureId::ANnzColVar] = a.stats.col.var;
    f[FeatureId::ALoadImbalanceRow] = a.stats.row.imbalance;
    f[FeatureId::ALoadImbalanceCol] = a.stats.col.imbalance;

    f[FeatureId::BRows] = b.rows;
    f[FeatureId::BCols] = b.cols;
    f[FeatureId::BNnz] = static_cast<double>(b.nnz);
    f[FeatureId::BSparsity] = 1.0 - density(b);
    f[FeatureId::BNnzRowMean] = b.stats.row.mean;
    f[FeatureId::BNnzRowVar] = b.stats.row.var;
    f[FeatureId::BNnzColMean] = b.stats.col.mean;
    f[FeatureId::BNnzColVar] = b.stats.col.var;
    f[FeatureId::BLoadImbalanceRow] = b.stats.row.imbalance;
    f[FeatureId::BLoadImbalanceCol] = b.stats.col.imbalance;

    f[FeatureId::Tile1DDensityB] = b.tile1d.mean_density;
    f[FeatureId::Tile1DCountB] = b.tile1d.nonempty_tiles;
    f[FeatureId::Tile2DDensityB] = b.tile2d.mean_density;
    f[FeatureId::Tile2DCountB] = b.tile2d.nonempty_tiles;
    f[FeatureId::Tile1DDensityA] = a.tile1d.mean_density;
    f[FeatureId::Tile1DCountA] = a.tile1d.nonempty_tiles;
    f[FeatureId::Tile2DDensityA] = a.tile2d.mean_density;
    f[FeatureId::Tile2DCountA] = a.tile2d.nonempty_tiles;

    return f;
}

FeatureVector
extractFeatures(const CsrMatrix &a, const CsrMatrix &b,
                const FeatureTileConfig &cfg)
{
    return combineFeatures(summarizeMatrix(a, cfg),
                           summarizeMatrix(b, cfg));
}

} // namespace misam
