/**
 * @file
 * Synthetic proxies for the SuiteSparse matrices of the paper's Table 3.
 *
 * The real collection is not available offline, so each matrix is
 * regenerated from its published dimensions, nonzero count, and density
 * with a structural family matched to its application domain: power-law
 * graphs for the network/social matrices, banded stencils for the
 * FEM/CFD ones, and block-structured fill for the circuit/optimization
 * matrices. The features that drive both the dataflow choice and the
 * scheduling quality — dims, nnz distribution, imbalance — are thereby
 * preserved.
 */

#ifndef MISAM_WORKLOADS_SUITESPARSE_SYNTH_HH
#define MISAM_WORKLOADS_SUITESPARSE_SYNTH_HH

#include <string>
#include <vector>

#include "sparse/csr.hh"
#include "util/random.hh"

namespace misam {

/** Structural family used to synthesize a proxy. */
enum class MatrixFamily
{
    PowerLaw, ///< Scale-free graph (p2p, social, co-authorship).
    Banded,   ///< FEM/CFD stencil band.
    Block,    ///< Circuit / optimization block structure.
};

/** One row of the paper's Table 3. */
struct SuiteSparseProxyInfo
{
    std::string name;    ///< Full SuiteSparse name, e.g. "p2p-Gnutella24".
    std::string id;      ///< Short id used in figures, e.g. "p2p".
    double density;      ///< Published density.
    Index rows;          ///< Published dimension (square matrices).
    Offset nnz;          ///< Published nonzero count.
    MatrixFamily family; ///< Synthesis family.
};

/** The 16 Table-3 matrices. */
const std::vector<SuiteSparseProxyInfo> &suiteSparseTable();

/** Look up a table entry by short id or full name; fatal() if unknown. */
const SuiteSparseProxyInfo &suiteSparseInfo(const std::string &id_or_name);

/**
 * Generate the proxy at `scale` (1.0 = published size). Rows scale
 * linearly and nnz scales to preserve the average row degree, keeping
 * the scheduling behaviour representative at reduced cost.
 */
CsrMatrix generateSuiteSparseProxy(const SuiteSparseProxyInfo &info,
                                   double scale, Rng &rng);

/** Convenience overload by id/name. */
CsrMatrix generateSuiteSparseProxy(const std::string &id_or_name,
                                   double scale, Rng &rng);

} // namespace misam

#endif // MISAM_WORKLOADS_SUITESPARSE_SYNTH_HH
