/**
 * @file
 * Training-set synthesis for the selector and the latency predictor.
 *
 * The paper curates 6,219 matrices spanning 1%-99% sparsity on both
 * operands (SuiteSparse structures plus pruned DNN tensors) for the
 * classifier, and a 19,000-matrix superset for the latency model (§4
 * "Datasets"). We regenerate that population synthetically: each sample
 * draws a structural family, dimensions, and densities, runs all four
 * design simulators, and is labeled with the objective-optimal design —
 * labels are *emergent from the simulators*, never hard-coded.
 */

#ifndef MISAM_WORKLOADS_TRAINING_DATA_HH
#define MISAM_WORKLOADS_TRAINING_DATA_HH

#include <array>
#include <vector>

#include "features/features.hh"
#include "ml/dataset.hh"
#include "sim/design_sim.hh"

namespace misam {

/** One labeled training sample. */
struct TrainingSample
{
    FeatureVector features;
    std::array<SimResult, kNumDesigns> results;
    int best_design = 0; ///< argmin exec_seconds over the designs.
};

/** Knobs of the training-set generator. */
struct TrainingDataConfig
{
    std::size_t num_samples = 600;  ///< Paper scale: 6,219 (selector) and
                                    ///< 19,000 (latency); benches default
                                    ///< lower for runtime.
    std::uint64_t seed = 7;
    Index min_dim = 64;             ///< Smallest matrix dimension.
    Index max_dim = 2048;           ///< Largest matrix dimension.
    double min_density = 0.0008;    ///< ~99.9% sparse lower bound.
    double max_density = 0.99;      ///< ~dense upper bound.
    /** Fraction of samples drawn from the DNN-like population (B with
     *  power-of-two columns, moderately sparse or dense). */
    double ml_fraction = 0.5;
    /** Worker threads for sample generation: 0 = MISAM_THREADS env or
     *  the hardware default (see util/parallel.hh). Any value yields
     *  identical samples: sample i draws from its own Rng substream
     *  derived from (seed, i). */
    unsigned threads = 0;
};

/**
 * Draw one random (A, B) workload pair from the mixed DNN/scientific
 * population the training set samples. Exposed so other consumers (the
 * Trapezoid-selection study of §6.3, custom training flows) can share
 * the same population.
 */
std::pair<CsrMatrix, CsrMatrix>
generateWorkloadPair(const TrainingDataConfig &cfg, Rng &rng);

/**
 * Generate sample `index` of the set: seed an Rng substream from
 * (cfg.seed, index), draw workload pairs until one is non-degenerate,
 * then extract features and label it by simulating all designs.
 * Deterministic in (cfg, index) alone — the basis of the parallel
 * generator's order-independence.
 */
TrainingSample generateTrainingSample(const TrainingDataConfig &cfg,
                                      std::size_t index);

/**
 * Generate the labeled sample set by running all design simulators,
 * fanned out over cfg.threads workers. Output is bit-identical for any
 * thread count (each sample owns its Rng substream).
 */
std::vector<TrainingSample>
generateTrainingSamples(const TrainingDataConfig &cfg = {});

/**
 * Classifier view: one row per sample, features -> best-design label.
 */
Dataset toClassifierDataset(const std::vector<TrainingSample> &samples);

/**
 * Latency-predictor view: one row per (sample, design) with the design
 * id appended to the features (see augmentFeatures) and target
 * log2(exec_seconds). The label column carries the design id.
 */
Dataset toLatencyDataset(const std::vector<TrainingSample> &samples);

} // namespace misam

#endif // MISAM_WORKLOADS_TRAINING_DATA_HH
