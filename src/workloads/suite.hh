/**
 * @file
 * The paper's evaluation suite: 116 standalone matrix-multiplication
 * workloads across five sparsity categories — 15 MS x D, 38 MS x MS,
 * 12 HS x D, 36 HS x MS, and 12 HS x HS (§4 "Workloads").
 *
 * D operands are dense with 512 columns, MS operands are pruned DNN
 * weights (densities 0.1/0.2) or moderately sparse 512-column matrices
 * (densities 0.2/0.4/0.6), and HS operands are the Table-3 SuiteSparse
 * proxies. HS x HS squares each proxy (A x A), as in graph analytics.
 */

#ifndef MISAM_WORKLOADS_SUITE_HH
#define MISAM_WORKLOADS_SUITE_HH

#include <string>
#include <vector>

#include "sparse/csr.hh"

namespace misam {

/** The five workload categories of the evaluation. */
enum class WorkloadCategory : int
{
    MSxD = 0,
    MSxMS = 1,
    HSxD = 2,
    HSxMS = 3,
    HSxHS = 4,
};

/** Number of categories. */
constexpr std::size_t kNumCategories = 5;

/** Display name, e.g. "HSxMS". */
const char *categoryName(WorkloadCategory cat);

/** One standalone workload C = A * B. */
struct Workload
{
    std::string name;
    WorkloadCategory category;
    CsrMatrix a;
    CsrMatrix b;
};

/** Suite-construction knobs. */
struct SuiteConfig
{
    /**
     * Linear scale on the HS SuiteSparse proxies (1.0 = published size).
     * The default keeps the whole 116-workload suite tractable on a
     * laptop while preserving per-matrix structure.
     */
    double hs_scale = 0.12;
    Index dense_cols = 512;      ///< Columns of the D and MS-B operands.
    std::uint64_t seed = 2025;   ///< Generator seed.

    int count_ms_x_d = 15;
    int count_ms_x_ms = 38;
    int count_hs_x_d = 12;
    int count_hs_x_ms = 36;
    int count_hs_x_hs = 12;
};

/** Build the full evaluation suite. */
std::vector<Workload> buildEvaluationSuite(const SuiteConfig &cfg = {});

/** Build only one category of the suite. */
std::vector<Workload> buildCategory(WorkloadCategory cat,
                                    const SuiteConfig &cfg = {});

/** The 12 HS matrix ids the evaluation uses from Table 3. */
const std::vector<std::string> &evaluationHsIds();

/** Compact density tag for workload names: 0.1 -> "0.1". */
std::string formatDensity(double d);

} // namespace misam

#endif // MISAM_WORKLOADS_SUITE_HH
