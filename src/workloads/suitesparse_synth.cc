#include "workloads/suitesparse_synth.hh"

#include <algorithm>
#include <cmath>

#include "sparse/generate.hh"
#include "util/logging.hh"

namespace misam {

const std::vector<SuiteSparseProxyInfo> &
suiteSparseTable()
{
    // Name, id, density, rows, nnz straight from Table 3; the family is
    // our classification of each matrix's domain.
    static const std::vector<SuiteSparseProxyInfo> table = {
        {"p2p-Gnutella24", "p2p", 9.3e-5, 26518, 65369,
         MatrixFamily::PowerLaw},
        {"sx-mathoverflow", "sx", 3.9e-4, 24818, 239978,
         MatrixFamily::PowerLaw},
        {"ca-CondMat", "cond", 3.5e-4, 23133, 186936,
         MatrixFamily::PowerLaw},
        {"Oregon-2", "ore", 3.5e-4, 11806, 65460, MatrixFamily::PowerLaw},
        {"email-Enron", "em", 2.7e-4, 36692, 367662,
         MatrixFamily::PowerLaw},
        {"opt1", "opt", 8.1e-3, 15449, 1930655, MatrixFamily::Block},
        {"scircuit", "sc", 3.3e-5, 170998, 958936, MatrixFamily::Block},
        {"gupta2", "gup", 1.1e-3, 62064, 4248286, MatrixFamily::Block},
        {"sme3Db", "sme", 2.5e-3, 29067, 2081063, MatrixFamily::Banded},
        {"poisson3Da", "poi", 1.9e-3, 13514, 352762,
         MatrixFamily::Banded},
        {"wiki-RfA", "wiki", 1.5e-3, 11380, 188077,
         MatrixFamily::PowerLaw},
        {"ca-AstroPh", "astro", 1.1e-3, 18772, 396160,
         MatrixFamily::PowerLaw},
        {"msc10848", "ms", 1.0e-2, 10848, 1229776, MatrixFamily::Banded},
        {"ramage02", "ram", 1.0e-2, 16830, 2866352, MatrixFamily::Banded},
        {"cage12", "cage", 1.2e-4, 130228, 2032536,
         MatrixFamily::Banded},
        {"goodwin", "good", 6.0e-3, 7320, 324772, MatrixFamily::Banded},
    };
    return table;
}

const SuiteSparseProxyInfo &
suiteSparseInfo(const std::string &id_or_name)
{
    for (const auto &info : suiteSparseTable())
        if (info.id == id_or_name || info.name == id_or_name)
            return info;
    fatal("suiteSparseInfo: unknown matrix '", id_or_name, "'");
}

CsrMatrix
generateSuiteSparseProxy(const SuiteSparseProxyInfo &info, double scale,
                         Rng &rng)
{
    if (scale <= 0.0 || scale > 1.0)
        fatal("generateSuiteSparseProxy: scale ", scale, " out of (0,1]");

    const auto rows = std::max<Index>(
        64, static_cast<Index>(info.rows * scale));
    // Preserve the average row degree.
    const double avg_degree =
        static_cast<double>(info.nnz) / static_cast<double>(info.rows);
    const auto target_nnz = std::max<Offset>(
        rows, static_cast<Offset>(avg_degree * rows));

    switch (info.family) {
      case MatrixFamily::PowerLaw:
        return generatePowerLawGraph(rows, target_nnz, /*alpha=*/2.1, rng);
      case MatrixFamily::Banded: {
        // Band half-width sized so the expected degree matches.
        constexpr double fill = 0.8;
        const auto bandwidth = std::max<Index>(
            1, static_cast<Index>(avg_degree / (2.0 * fill)));
        return generateBanded(rows, rows, bandwidth, fill, rng);
      }
      case MatrixFamily::Block: {
        constexpr double block_density = 0.45;
        const auto block = std::max<Index>(
            2, static_cast<Index>(std::sqrt(avg_degree / block_density) *
                                  2.0));
        // A thin random background models off-block coupling entries.
        const double background =
            0.1 * avg_degree / static_cast<double>(rows);
        return generateBlockDiagonal(rows, rows, block, block_density,
                                     background, rng);
      }
    }
    panic("generateSuiteSparseProxy: unknown family");
}

CsrMatrix
generateSuiteSparseProxy(const std::string &id_or_name, double scale,
                         Rng &rng)
{
    return generateSuiteSparseProxy(suiteSparseInfo(id_or_name), scale,
                                    rng);
}

} // namespace misam
