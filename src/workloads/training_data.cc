#include "workloads/training_data.hh"

#include <cmath>

#include "reconfig/engine.hh"
#include "sparse/convert.hh"
#include "sparse/generate.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace misam {

namespace {

double
logUniform(Rng &rng, double lo, double hi)
{
    return std::exp(rng.uniform(std::log(lo), std::log(hi)));
}

Index
logUniformDim(Rng &rng, Index lo, Index hi)
{
    return static_cast<Index>(logUniform(rng, lo, hi));
}

/** A random structured sparse matrix from the scientific population. */
CsrMatrix
randomScientificMatrix(Index rows, Index cols, double density, Rng &rng)
{
    switch (rng.uniformInt(5)) {
      case 0:
        return generateUniform(rows, cols, density, rng);
      case 1: {
        const auto bandwidth = std::max<Index>(
            1, static_cast<Index>(density * cols / 1.6));
        return generateBanded(rows, cols, bandwidth, 0.8, rng);
      }
      case 2: {
        const auto block = std::max<Index>(
            2, static_cast<Index>(std::sqrt(density * rows * 4.0)));
        return generateBlockDiagonal(rows, cols, block, 0.5,
                                     density * 0.1, rng);
      }
      case 3: {
        if (rows == cols) {
            const auto nnz = std::max<Offset>(
                rows, static_cast<Offset>(density * rows * cols));
            return generatePowerLawGraph(rows, nnz, 2.1, rng);
        }
        return generateUniform(rows, cols, density, rng);
      }
      default:
        return generateRowImbalanced(rows, cols, density, 0.03,
                                     rng.uniform(4.0, 24.0), rng);
    }
}

/** A random matrix from the DNN-like population. */
CsrMatrix
randomMlMatrix(Index rows, Index cols, double density, Rng &rng)
{
    if (density > 0.9)
        return generateDenseCsr(rows, cols, rng);
    if (rng.bernoulli(0.6))
        return generateStructuredPruned(rows, cols, density, 8, rng);
    return generateUniform(rows, cols, density, rng);
}

Index
powerOfTwoDim(Rng &rng)
{
    static const Index dims[] = {128, 256, 512, 1024, 2048};
    return dims[rng.uniformInt(5)];
}

} // namespace

std::pair<CsrMatrix, CsrMatrix>
generateWorkloadPair(const TrainingDataConfig &cfg, Rng &rng)
{
    const bool ml_like = rng.bernoulli(cfg.ml_fraction);
    if (ml_like) {
        // DNN population: B has power-of-two columns and is dense or
        // moderately sparse (pruning); A is a pruned weight tensor.
        const Index m = logUniformDim(rng, cfg.min_dim, cfg.max_dim);
        const Index k = powerOfTwoDim(rng);
        const Index n = powerOfTwoDim(rng);
        const double da = logUniform(rng, 0.02, 0.9);
        // Pruned/dense DNN operands skew dense: a third are fully
        // dense activations, the rest spread uniformly.
        const double db = rng.bernoulli(0.33)
                              ? 1.0
                              : rng.uniform(0.05, cfg.max_density);
        return {randomMlMatrix(m, k, da, rng),
                randomMlMatrix(k, n, db, rng)};
    }
    // Scientific population: large, highly sparse, structured.
    const Index m = logUniformDim(rng, cfg.min_dim, cfg.max_dim);
    const Index k = rng.bernoulli(0.5)
                        ? m
                        : logUniformDim(rng, cfg.min_dim, cfg.max_dim);
    const Index n = rng.bernoulli(0.4)
                        ? k
                        : logUniformDim(rng, cfg.min_dim, cfg.max_dim);
    const double da = logUniform(rng, cfg.min_density, 0.1);
    const double db = logUniform(rng, cfg.min_density, 0.5);
    return {randomScientificMatrix(m, k, da, rng),
            randomScientificMatrix(k, n, db, rng)};
}

TrainingSample
generateTrainingSample(const TrainingDataConfig &cfg, std::size_t index)
{
    Rng rng(cfg.seed, index);
    for (;;) {
        auto [a, b] = generateWorkloadPair(cfg, rng);
        if (a.nnz() == 0 || b.nnz() == 0)
            continue; // Degenerate draw; resample within this stream.

        TrainingSample sample;
        sample.features = extractFeatures(a, b);
        // One CSC conversion of A shared by all four design simulations
        // (the per-design loop used to convert internally).
        const CscMatrix a_csc = csrToCsc(a);
        sample.results = simulateAllDesigns(a, a_csc, b);
        sample.best_design =
            static_cast<int>(fastestDesign(sample.results));
        return sample;
    }
}

std::vector<TrainingSample>
generateTrainingSamples(const TrainingDataConfig &cfg)
{
    if (cfg.num_samples == 0)
        fatal("generateTrainingSamples: zero samples requested");
    std::vector<TrainingSample> samples(cfg.num_samples);
    parallelFor(
        cfg.num_samples,
        [&](std::size_t i) { samples[i] = generateTrainingSample(cfg, i); },
        cfg.threads);
    return samples;
}

Dataset
toClassifierDataset(const std::vector<TrainingSample> &samples)
{
    Dataset data(kNumFeatures);
    for (const TrainingSample &s : samples)
        data.addSample(s.features.toVector(), s.best_design);
    return data;
}

Dataset
toLatencyDataset(const std::vector<TrainingSample> &samples)
{
    Dataset data(kAugmentedFeatures);
    for (const TrainingSample &s : samples) {
        for (std::size_t d = 0; d < kNumDesigns; ++d) {
            const SimResult &r = s.results[d];
            if (r.exec_seconds <= 0.0)
                continue;
            data.addSample(augmentFeatures(s.features, allDesigns()[d]),
                           static_cast<int>(d),
                           std::log2(r.exec_seconds));
        }
    }
    return data;
}

} // namespace misam
