/**
 * @file
 * DNN-derived workloads: GEMM-lowered layer shapes of ResNet-50, VGG-16,
 * MobileNet, and ConvNeXt, plus STR-style structured pruning to the
 * paper's target weight densities (0.1 and 0.2). These supply the MS
 * (moderately sparse) and D (dense) operands of the evaluation suite and
 * the DNN half of the training set.
 */

#ifndef MISAM_WORKLOADS_DNN_HH
#define MISAM_WORKLOADS_DNN_HH

#include <string>
#include <vector>

#include "sparse/csr.hh"
#include "util/random.hh"

namespace misam {

/** One GEMM-lowered layer: weights are M x K, activations K x N. */
struct DnnLayer
{
    std::string model; ///< Source network, e.g. "ResNet-50".
    std::string name;  ///< Layer name, e.g. "conv3_1".
    Index m;           ///< Output channels.
    Index k;           ///< Input channels x kernel area.
};

/** Representative GEMM-lowered ResNet-50 layers. */
const std::vector<DnnLayer> &resnet50Layers();

/** Representative GEMM-lowered VGG-16 layers. */
const std::vector<DnnLayer> &vgg16Layers();

/** Representative GEMM-lowered MobileNet-V1 pointwise layers. */
const std::vector<DnnLayer> &mobilenetLayers();

/** Representative GEMM-lowered ConvNeXt-T layers (Figure 13 workloads). */
const std::vector<DnnLayer> &convnextLayers();

/**
 * STR-style structured pruning: the layer's M x K weight matrix with
 * square blocks kept at probability `density` and fully dense inside.
 */
CsrMatrix generatePrunedWeights(const DnnLayer &layer, double density,
                                Rng &rng);

/** A dense K x N activation matrix for the layer (N = sequence length). */
CsrMatrix generateActivations(const DnnLayer &layer, Index n, Rng &rng);

/**
 * A moderately sparse K x N activation-like matrix (e.g. post-ReLU or
 * attention-masked activations) at the given density.
 */
CsrMatrix generateSparseActivations(const DnnLayer &layer, Index n,
                                    double density, Rng &rng);

} // namespace misam

#endif // MISAM_WORKLOADS_DNN_HH
