#include "workloads/traffic.hh"

#include "sparse/generate.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace misam {

namespace {

// Substream bases: job i draws from stream i; tenants and the arrival
// clock live far above any realistic job count so streams never collide.
constexpr std::uint64_t kTenantStreamBase = std::uint64_t(1) << 40;
constexpr std::uint64_t kArrivalStream = std::uint64_t(1) << 41;

// Diurnal rate multipliers over one synthetic day: night trough, morning
// ramp, midday peak, evening ramp-down. Gaps divide by the rate.
constexpr double kDiurnalRate[8] = {0.25, 0.5, 1.0, 2.0,
                                    4.0,  2.0, 1.0, 0.5};

double
nextGap(const TrafficConfig &config, Rng &arr, std::size_t i,
        std::size_t &burst_remaining)
{
    switch (config.arrival) {
    case ArrivalProcess::Uniform:
        return arr.uniform(0.0, 2.0 * config.mean_interarrival_s);
    case ArrivalProcess::Bursty: {
        if (burst_remaining == 0) {
            // Idle gap, then a fresh burst of 1..2*burst_jobs jobs.
            burst_remaining =
                1 + std::size_t(arr.uniformInt(
                        std::uint64_t(2 * config.burst_jobs)));
            --burst_remaining;
            return arr.uniform(0.5, 1.5) * config.mean_interarrival_s *
                   config.burst_factor;
        }
        --burst_remaining;
        return arr.uniform(
            0.0, 2.0 * config.mean_interarrival_s / config.burst_factor);
    }
    case ArrivalProcess::Diurnal: {
        const std::size_t period =
            config.diurnal_period == 0 ? 1 : config.diurnal_period;
        const std::size_t phase = i * 8 / period % 8;
        return arr.uniform(
            0.0, 2.0 * config.mean_interarrival_s / kDiurnalRate[phase]);
    }
    }
    fatal("generateTraffic: unknown arrival process");
}

} // namespace

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
    case ArrivalProcess::Uniform:
        return "uniform";
    case ArrivalProcess::Bursty:
        return "bursty";
    case ArrivalProcess::Diurnal:
        return "diurnal";
    }
    return "?";
}

std::vector<TrafficTenant>
defaultTenantMix()
{
    TrafficTenant spgemm;
    spgemm.name = "spgemm";
    spgemm.a_rows = 192;
    spgemm.a_cols = 256;
    spgemm.a_density = 0.015;
    spgemm.b_cols = 192;
    spgemm.b_density = 0.02;
    spgemm.repetitions = 1e7;
    spgemm.weight = 2;

    TrafficTenant dnn;
    dnn.name = "dnn";
    dnn.a_rows = 192;
    dnn.a_cols = 256;
    dnn.a_density = 0.06;
    dnn.b_cols = 96;
    dnn.dense_b = true;
    dnn.repetitions = 1e7;
    dnn.weight = 1;

    return {spgemm, dnn};
}

std::vector<TrafficJob>
generateTraffic(const TrafficConfig &config)
{
    const std::vector<TrafficTenant> tenants =
        config.tenants.empty() ? defaultTenantMix() : config.tenants;
    std::size_t total_weight = 0;
    for (const TrafficTenant &tenant : tenants)
        total_weight += tenant.weight;
    if (total_weight == 0)
        fatal("generateTraffic: tenant mix has zero total weight");

    // Deterministic weighted rotation: slot -> tenant index.
    std::vector<std::size_t> rotation;
    rotation.reserve(total_weight);
    for (std::size_t t = 0; t < tenants.size(); ++t)
        for (unsigned w = 0; w < tenants[t].weight; ++w)
            rotation.push_back(t);

    // One shared B operand per tenant, from the tenant's own substream.
    std::vector<CsrMatrix> shared_b;
    shared_b.reserve(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        const TrafficTenant &tenant = tenants[t];
        Rng rng(config.seed, kTenantStreamBase + t);
        shared_b.push_back(tenant.dense_b
                               ? generateDenseCsr(tenant.a_cols,
                                                  tenant.b_cols, rng)
                               : generateUniform(tenant.a_cols,
                                                 tenant.b_cols,
                                                 tenant.b_density, rng));
    }

    std::vector<TrafficJob> stream;
    stream.reserve(config.jobs);
    Rng arr(config.seed, kArrivalStream);
    double clock_s = 0.0;
    std::size_t burst_remaining = 0;
    for (std::size_t i = 0; i < config.jobs; ++i) {
        clock_s += nextGap(config, arr, i, burst_remaining);
        const std::size_t t = rotation[i % total_weight];
        const TrafficTenant &tenant = tenants[t];
        Rng job_rng(config.seed, i);
        TrafficJob out;
        out.job.name = tenant.name + "/" + std::to_string(i);
        out.job.a = generateUniform(tenant.a_rows, tenant.a_cols,
                                    tenant.a_density, job_rng);
        out.job.b = shared_b[t];
        out.job.repetitions = tenant.repetitions;
        out.arrival_s = clock_s;
        out.tenant = t;
        stream.push_back(std::move(out));
    }
    return stream;
}

std::vector<BatchJob>
trafficBatch(const std::vector<TrafficJob> &stream)
{
    std::vector<BatchJob> jobs;
    jobs.reserve(stream.size());
    for (const TrafficJob &entry : stream)
        jobs.push_back(entry.job);
    return jobs;
}

} // namespace misam
