/**
 * @file
 * Seeded synthetic serving traffic for the fleet router and benches.
 *
 * A traffic stream is a mixed-tenant job sequence with logical arrival
 * times: each tenant owns a shared B operand (the multi-tenant weight
 * matrix of §6.2) and a structural recipe for its A operands, and the
 * arrival process models the regimes a serving fleet actually sees —
 * uniform load, on/off bursts, and a diurnal rate curve. Everything is
 * a pure function of the seed via Rng(seed, i) substreams: job i's
 * operands never depend on how many jobs were generated before it, and
 * arrival times come from one dedicated serial substream, so streams
 * are byte-stable across hosts and thread counts.
 */

#ifndef MISAM_WORKLOADS_TRAFFIC_HH
#define MISAM_WORKLOADS_TRAFFIC_HH

#include <cstdint>
#include <string>
#include <vector>

// misam-lint: allow(include-layering) -- traffic synthesis emits core::BatchJob records directly; splitting the job struct out of core/ is tracked in ROADMAP.md
#include "core/misam.hh"
#include "sparse/csr.hh"

namespace misam {

/** Arrival process shaping the logical interarrival gaps. */
enum class ArrivalProcess {
    Uniform, ///< i.i.d. uniform gaps around the mean.
    Bursty,  ///< on/off: dense in-burst gaps separated by long idles.
    Diurnal, ///< rate follows a fixed 8-phase day curve.
};

/** Stable name ("uniform" / "bursty" / "diurnal"). */
const char *arrivalProcessName(ArrivalProcess process);

/** One tenant's workload recipe. */
struct TrafficTenant
{
    std::string name = "tenant";
    Index a_rows = 192;       ///< Per-job A operand shape.
    Index a_cols = 256;
    double a_density = 0.02;
    Index b_cols = 192;       ///< Shared B operand (one per tenant).
    double b_density = 0.02;
    bool dense_b = false;     ///< Dense B: the §6.2 DNN tenant.
    double repetitions = 1.0; ///< Executions each job stands for.
    unsigned weight = 1;      ///< Share of the deterministic rotation.
};

/** Knobs of the traffic generator. */
struct TrafficConfig
{
    std::uint64_t seed = 1;
    std::size_t jobs = 128;
    ArrivalProcess arrival = ArrivalProcess::Uniform;
    double mean_interarrival_s = 1.0;
    double burst_factor = 8.0;   ///< Bursty: idle gap multiplier and
                                 ///< in-burst rate divisor.
    std::size_t burst_jobs = 16; ///< Bursty: mean jobs per burst.
    std::size_t diurnal_period = 64; ///< Diurnal: jobs per synthetic day.
    /** Tenant mix; empty selects defaultTenantMix(). */
    std::vector<TrafficTenant> tenants;
};

/** One generated job with its logical arrival time. */
struct TrafficJob
{
    BatchJob job;
    double arrival_s = 0.0;
    std::size_t tenant = 0;
};

/**
 * The two-tenant thrashing mix the fleet benches route: a sparse SpGEMM
 * tenant (weight 2) interleaved with a dense-B DNN tenant (weight 1),
 * so consecutive jobs alternate predicted-best designs — worst case for
 * a single board, best case for affinity routing.
 */
std::vector<TrafficTenant> defaultTenantMix();

/**
 * Generate `config.jobs` jobs. Tenants rotate deterministically by
 * cumulative weight (weights {2, 1} put every third job on tenant 1);
 * arrival times are nondecreasing and start after the first gap.
 */
std::vector<TrafficJob> generateTraffic(const TrafficConfig &config);

/** Strip arrivals: the plain BatchJob stream, in arrival order. */
std::vector<BatchJob> trafficBatch(const std::vector<TrafficJob> &stream);

} // namespace misam

#endif // MISAM_WORKLOADS_TRAFFIC_HH
