#include "workloads/dnn.hh"

#include "sparse/generate.hh"
#include "util/logging.hh"

namespace misam {

const std::vector<DnnLayer> &
resnet50Layers()
{
    // im2col-lowered conv shapes: M = out channels, K = in * kh * kw.
    static const std::vector<DnnLayer> layers = {
        {"ResNet-50", "conv2_1x1a", 64, 256},
        {"ResNet-50", "conv2_3x3", 64, 576},
        {"ResNet-50", "conv2_1x1b", 256, 64},
        {"ResNet-50", "conv3_1x1a", 128, 512},
        {"ResNet-50", "conv3_3x3", 128, 1152},
        {"ResNet-50", "conv3_1x1b", 512, 128},
        {"ResNet-50", "conv4_1x1a", 256, 1024},
        {"ResNet-50", "conv4_3x3", 256, 2304},
        {"ResNet-50", "conv4_1x1b", 1024, 256},
        {"ResNet-50", "conv5_3x3", 512, 4608},
        {"ResNet-50", "conv5_1x1b", 2048, 512},
        {"ResNet-50", "fc", 1000, 2048},
    };
    return layers;
}

const std::vector<DnnLayer> &
vgg16Layers()
{
    static const std::vector<DnnLayer> layers = {
        {"VGG-16", "conv1_2", 64, 576},
        {"VGG-16", "conv2_1", 128, 576},
        {"VGG-16", "conv2_2", 128, 1152},
        {"VGG-16", "conv3_1", 256, 1152},
        {"VGG-16", "conv3_2", 256, 2304},
        {"VGG-16", "conv4_1", 512, 2304},
        {"VGG-16", "conv4_2", 512, 4608},
        {"VGG-16", "conv5_1", 512, 4608},
        {"VGG-16", "fc6", 4096, 4096},
        {"VGG-16", "fc7", 1000, 4096},
    };
    return layers;
}

const std::vector<DnnLayer> &
mobilenetLayers()
{
    static const std::vector<DnnLayer> layers = {
        {"MobileNet", "pw2", 64, 32},
        {"MobileNet", "pw4", 128, 64},
        {"MobileNet", "pw6", 256, 128},
        {"MobileNet", "pw8", 512, 256},
        {"MobileNet", "pw12", 1024, 512},
    };
    return layers;
}

const std::vector<DnnLayer> &
convnextLayers()
{
    static const std::vector<DnnLayer> layers = {
        {"ConvNeXt", "stage1_pw1", 384, 96},
        {"ConvNeXt", "stage1_pw2", 96, 384},
        {"ConvNeXt", "stage2_pw1", 768, 192},
        {"ConvNeXt", "stage3_pw1", 1536, 384},
        {"ConvNeXt", "stage4_pw1", 3072, 768},
        {"ConvNeXt", "stage4_pw2", 768, 3072},
    };
    return layers;
}

CsrMatrix
generatePrunedWeights(const DnnLayer &layer, double density, Rng &rng)
{
    if (density <= 0.0 || density > 1.0)
        fatal("generatePrunedWeights: density ", density, " out of (0,1]");
    // STR prunes in channel-aligned groups; 8x8 blocks model that
    // structured granularity.
    return generateStructuredPruned(layer.m, layer.k, density,
                                    /*block_size=*/8, rng);
}

CsrMatrix
generateActivations(const DnnLayer &layer, Index n, Rng &rng)
{
    return generateDenseCsr(layer.k, n, rng);
}

CsrMatrix
generateSparseActivations(const DnnLayer &layer, Index n, double density,
                          Rng &rng)
{
    if (density <= 0.0 || density > 1.0)
        fatal("generateSparseActivations: density ", density,
              " out of (0,1]");
    return generateUniform(layer.k, n, density, rng);
}

} // namespace misam
