#include "workloads/suite.hh"

#include <algorithm>

#include "sparse/generate.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "workloads/dnn.hh"
#include "workloads/suitesparse_synth.hh"

namespace misam {

const char *
categoryName(WorkloadCategory cat)
{
    switch (cat) {
      case WorkloadCategory::MSxD:
        return "MSxD";
      case WorkloadCategory::MSxMS:
        return "MSxMS";
      case WorkloadCategory::HSxD:
        return "HSxD";
      case WorkloadCategory::HSxMS:
        return "HSxMS";
      case WorkloadCategory::HSxHS:
        return "HSxHS";
    }
    return "?";
}

const std::vector<std::string> &
evaluationHsIds()
{
    static const std::vector<std::string> ids = {
        "p2p", "sx", "cond", "ore", "em",   "opt",
        "poi", "wiki", "astro", "ms", "good", "ram",
    };
    return ids;
}

std::string
formatDensity(double d)
{
    // 0.1 -> "0.1", 0.25 -> "0.25"
    std::string s = std::to_string(d);
    while (s.size() > 3 && s.back() == '0')
        s.pop_back();
    return s;
}

namespace {

std::vector<Workload>
buildMsXD(const SuiteConfig &cfg, Rng &rng)
{
    // Pruned ResNet-50 weights times dense activations of 512 columns,
    // at weight densities 0.1 and 0.2 (§4).
    std::vector<Workload> out;
    const auto &layers = resnet50Layers();
    const std::vector<double> densities = {0.1, 0.2};
    for (double d : densities) {
        for (const DnnLayer &layer : layers) {
            if (static_cast<int>(out.size()) >= cfg.count_ms_x_d)
                return out;
            Workload w;
            w.name = layer.model + "/" + layer.name + "@d" +
                     formatDensity(d);
            w.category = WorkloadCategory::MSxD;
            w.a = generatePrunedWeights(layer, d, rng);
            w.b = generateActivations(layer, cfg.dense_cols, rng);
            out.push_back(std::move(w));
        }
    }
    return out;
}

std::vector<Workload>
buildMsXMs(const SuiteConfig &cfg, Rng &rng)
{
    // Pruned VGG-16 weights times moderately sparse activations.
    std::vector<Workload> out;
    const auto &layers = vgg16Layers();
    const std::vector<double> w_densities = {0.1, 0.2};
    const std::vector<double> b_densities = {0.1, 0.2};
    for (double wd : w_densities) {
        for (double bd : b_densities) {
            for (const DnnLayer &layer : layers) {
                if (static_cast<int>(out.size()) >= cfg.count_ms_x_ms)
                    return out;
                Workload w;
                w.name = layer.model + "/" + layer.name + "@w" +
                         formatDensity(wd) + "b" + formatDensity(bd);
                w.category = WorkloadCategory::MSxMS;
                w.a = generatePrunedWeights(layer, wd, rng);
                w.b = generateSparseActivations(layer, cfg.dense_cols, bd,
                                                rng);
                out.push_back(std::move(w));
            }
        }
    }
    return out;
}

std::vector<Workload>
buildHsXD(const SuiteConfig &cfg, Rng &rng)
{
    std::vector<Workload> out;
    for (const std::string &id : evaluationHsIds()) {
        if (static_cast<int>(out.size()) >= cfg.count_hs_x_d)
            break;
        Workload w;
        w.name = id + "xD";
        w.category = WorkloadCategory::HSxD;
        w.a = generateSuiteSparseProxy(id, cfg.hs_scale, rng);
        w.b = generateDenseCsr(w.a.cols(), cfg.dense_cols, rng);
        out.push_back(std::move(w));
    }
    return out;
}

std::vector<Workload>
buildHsXMs(const SuiteConfig &cfg, Rng &rng)
{
    // Each HS matrix times three moderately sparse 512-column matrices
    // at densities 0.2 / 0.4 / 0.6 (§4).
    std::vector<Workload> out;
    const std::vector<double> densities = {0.2, 0.4, 0.6};
    for (const std::string &id : evaluationHsIds()) {
        const CsrMatrix a = generateSuiteSparseProxy(id, cfg.hs_scale, rng);
        for (double d : densities) {
            if (static_cast<int>(out.size()) >= cfg.count_hs_x_ms)
                return out;
            Workload w;
            w.name = id + "xMS" + formatDensity(d);
            w.category = WorkloadCategory::HSxMS;
            w.a = a;
            w.b = generateUniform(a.cols(), cfg.dense_cols, d, rng);
            out.push_back(std::move(w));
        }
    }
    return out;
}

std::vector<Workload>
buildHsXHs(const SuiteConfig &cfg, Rng &rng)
{
    // Self-multiplication A x A (graph analytics, solvers).
    std::vector<Workload> out;
    for (const std::string &id : evaluationHsIds()) {
        if (static_cast<int>(out.size()) >= cfg.count_hs_x_hs)
            break;
        Workload w;
        w.name = id + "x" + id;
        w.category = WorkloadCategory::HSxHS;
        w.a = generateSuiteSparseProxy(id, cfg.hs_scale, rng);
        w.b = w.a;
        out.push_back(std::move(w));
    }
    return out;
}

} // namespace

std::vector<Workload>
buildCategory(WorkloadCategory cat, const SuiteConfig &cfg)
{
    Rng rng(cfg.seed + static_cast<std::uint64_t>(cat) * 7919);
    switch (cat) {
      case WorkloadCategory::MSxD:
        return buildMsXD(cfg, rng);
      case WorkloadCategory::MSxMS:
        return buildMsXMs(cfg, rng);
      case WorkloadCategory::HSxD:
        return buildHsXD(cfg, rng);
      case WorkloadCategory::HSxMS:
        return buildHsXMs(cfg, rng);
      case WorkloadCategory::HSxHS:
        return buildHsXHs(cfg, rng);
    }
    panic("buildCategory: unknown category");
}

std::vector<Workload>
buildEvaluationSuite(const SuiteConfig &cfg)
{
    std::vector<Workload> suite;
    for (int c = 0; c < static_cast<int>(kNumCategories); ++c) {
        auto cat = buildCategory(static_cast<WorkloadCategory>(c), cfg);
        for (auto &w : cat)
            suite.push_back(std::move(w));
    }
    return suite;
}

} // namespace misam
