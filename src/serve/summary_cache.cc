#include "serve/summary_cache.hh"

#include "sparse/convert.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace misam {

SummaryCache::SummaryCache(SummaryCacheConfig config)
    : config_(config)
{
    if (config_.max_entries == 0)
        fatal("SummaryCache: max_entries must be positive");
}

std::uint64_t
SummaryCache::matrixBytes(const CsrMatrix &m)
{
    return static_cast<std::uint64_t>(m.rows() + 1) * sizeof(Offset) +
           static_cast<std::uint64_t>(m.nnz()) *
               (sizeof(Index) + sizeof(Value));
}

template <typename V>
void
SummaryCache::evictIfOverFull(Shard<V> &shard)
{
    // Called under mutex_. Evict the oldest *ready* entries until the
    // bound holds; entries still being computed are never evicted
    // (their promise holder owns the value and waiters hold
    // shared_future copies, so dropping a ready entry from the map is
    // always safe). Looping matters: an insert that finds every entry
    // in flight overshoots the bound, and a later insert must drain
    // that excess — the retired single-eviction version traded one
    // eviction per insertion and carried the overshoot forever.
    while (shard.map.size() > config_.max_entries) {
        bool evicted = false;
        for (std::size_t i = 0; i < shard.fifo.size(); ++i) {
            const Fingerprint128 fp = shard.fifo[i];
            const auto it = shard.map.find(fp);
            if (it == shard.map.end()) {
                // Stale fifo entry (cleared earlier); drop it without
                // counting an eviction — nothing left the map.
                shard.fifo.erase(shard.fifo.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                evicted = true;
                break;
            }
            if (it->second.wait_for(std::chrono::seconds(0)) !=
                std::future_status::ready)
                continue;
            shard.map.erase(it);
            shard.fifo.erase(shard.fifo.begin() +
                             static_cast<std::ptrdiff_t>(i));
            evictions_.fetch_add(1, std::memory_order_relaxed);
            if (metrics_)
                metrics_->add("cache.evictions");
            evicted = true;
            break;
        }
        if (!evicted)
            break; // Everything in flight; transient overshoot.
    }
}

template <typename V, typename ComputeFn>
std::shared_ptr<const V>
SummaryCache::lookup(Shard<V> &shard, const CsrMatrix &m,
                     ComputeFn &&compute,
                     std::atomic<std::uint64_t> &hits,
                     std::atomic<std::uint64_t> &misses,
                     std::atomic<std::uint64_t> *bytes_saved,
                     const char *hit_name, const char *miss_name,
                     const char *bytes_name)
{
    const Fingerprint128 fp = fingerprintMatrix(m);

    std::promise<std::shared_ptr<const V>> promise;
    typename Shard<V>::Future future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = shard.map.find(fp);
        if (it != shard.map.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            shard.map.emplace(fp, future);
            shard.fifo.push_back(fp);
            owner = true;
            evictIfOverFull(shard);
        }
    }

    if (owner) {
        // Compute outside the lock: other requesters for this key wait
        // on the future; requesters for other keys proceed unblocked.
        std::shared_ptr<const V> value = compute(m);
        promise.set_value(value);
        misses.fetch_add(1, std::memory_order_relaxed);
        if (metrics_)
            metrics_->add(miss_name);
        return value;
    }

    hits.fetch_add(1, std::memory_order_relaxed);
    if (metrics_)
        metrics_->add(hit_name);
    if (bytes_saved) {
        const std::uint64_t bytes = matrixBytes(m);
        bytes_saved->fetch_add(bytes, std::memory_order_relaxed);
        if (metrics_)
            metrics_->add(bytes_name, bytes);
    }
    return future.get();
}

std::shared_ptr<const MatrixFeatureSummary>
SummaryCache::summary(const CsrMatrix &m)
{
    return lookup(
        summaries_, m,
        [this](const CsrMatrix &mat) {
            if (config_.summary_compute_hook)
                config_.summary_compute_hook();
            return std::make_shared<const MatrixFeatureSummary>(
                summarizeMatrix(mat, config_.tile_config));
        },
        summary_hits_, summary_misses_, &summary_bytes_saved_,
        "cache.summary_hits", "cache.summary_misses",
        "cache.summary_bytes_saved");
}

std::shared_ptr<const CscMatrix>
SummaryCache::csc(const CsrMatrix &m)
{
    return lookup(
        cscs_, m,
        [](const CsrMatrix &mat) {
            return std::make_shared<const CscMatrix>(csrToCsc(mat));
        },
        csc_hits_, csc_misses_, nullptr, "cache.csc_hits",
        "cache.csc_misses", "");
}

std::size_t
SummaryCache::summaryEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return summaries_.map.size();
}

std::size_t
SummaryCache::cscEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cscs_.map.size();
}

void
SummaryCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    summaries_.map.clear();
    summaries_.fifo.clear();
    cscs_.map.clear();
    cscs_.fifo.clear();
}

} // namespace misam
