#include "serve/jobfile.hh"

#include <cctype>
#include <fstream>

#include "sparse/convert.hh"
#include "sparse/generate.hh"
#include "sparse/io.hh"
#include "util/logging.hh"

namespace misam {

namespace {

/**
 * Minimal parser for one flat JSON object: string keys mapped to
 * string, number, or boolean values. No nesting — the job schema is
 * flat by design. Fatal (naming the file:line) on anything malformed.
 */
class FlatJsonParser
{
  public:
    FlatJsonParser(const std::string &line, const std::string &where)
        : s_(line), where_(where)
    {
    }

    /** Parse `{"k":v,...}`; calls field(key, ...) per member. */
    template <typename FieldFn>
    void
    parseObject(FieldFn &&field)
    {
        skipSpace();
        expect('{');
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skipSpace();
            const std::string key = parseString();
            skipSpace();
            expect(':');
            skipSpace();
            field(key);
            skipSpace();
            const char c = next();
            if (c == '}')
                break;
            if (c != ',')
                fail("expected ',' or '}'");
        }
        skipSpace();
        if (pos_ != s_.size())
            fail("trailing characters after object");
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    fail("dangling escape");
                const char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default:
                    fail("unsupported escape '\\", std::string(1, e),
                         "'");
                }
            } else {
                out += c;
            }
        }
    }

    double
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        return std::strtod(s_.substr(start, pos_ - start).c_str(),
                           nullptr);
    }

    /** Whatever value comes next, discarded (for unknown keys). */
    void
    skipValue()
    {
        if (peek() == '"') {
            parseString();
        } else if (s_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else if (s_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
        } else {
            parseNumber();
        }
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    template <typename... Args>
    [[noreturn]] void
    fail(Args &&...args) const
    {
        fatal(where_, ": ", std::forward<Args>(args)...,
              " (column ", pos_ + 1, ")");
    }

  private:
    char
    next()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of line");
        return s_[pos_++];
    }

    void
    expect(char c)
    {
        if (next() != c)
            fail("expected '", std::string(1, c), "'");
    }

    void
    skipSpace()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    const std::string &where_;
    std::size_t pos_ = 0;
};

} // namespace

std::vector<ServeJobSpec>
parseJobFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("parseJobFile: cannot open ", path);

    std::vector<ServeJobSpec> specs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;

        const std::string where = path + ":" + std::to_string(lineno);
        FlatJsonParser parser(line, where);
        ServeJobSpec spec;
        spec.name = "job" + std::to_string(specs.size());
        parser.parseObject([&](const std::string &key) {
            if (key == "name") {
                spec.name = parser.parseString();
            } else if (key == "a") {
                spec.a_path = parser.parseString();
            } else if (key == "b") {
                spec.b_path = parser.parseString();
            } else if (key == "dense_cols") {
                spec.dense_cols =
                    static_cast<Index>(parser.parseNumber());
            } else if (key == "repetitions") {
                spec.repetitions = parser.parseNumber();
            } else {
                warn(where, ": ignoring unknown job key '", key, "'");
                parser.skipValue();
            }
        });
        if (spec.a_path.empty())
            fatal(where, ": job is missing required key 'a'");
        if (!spec.b_path.empty() && spec.b_path != "self" &&
            spec.dense_cols > 0)
            fatal(where, ": 'b' and 'dense_cols' are mutually exclusive");
        if (spec.repetitions < 1.0)
            fatal(where, ": repetitions must be >= 1");
        specs.push_back(std::move(spec));
    }
    return specs;
}

BatchJob
loadServeJob(const ServeJobSpec &spec)
{
    BatchJob job;
    job.name = spec.name;
    job.repetitions = spec.repetitions;
    job.a = cooToCsr(readMatrixMarketFile(spec.a_path));
    if (!spec.b_path.empty() && spec.b_path != "self") {
        job.b = cooToCsr(readMatrixMarketFile(spec.b_path));
    } else if (spec.dense_cols > 0) {
        // Same convention as the CLI's --dense-cols flag.
        Rng rng(1);
        job.b = generateDenseCsr(job.a.cols(), spec.dense_cols, rng);
    } else {
        if (job.a.rows() != job.a.cols())
            fatal("loadServeJob: job '", spec.name,
                  "' defaults to B = A but A is not square; give 'b' "
                  "or 'dense_cols'");
        job.b = job.a;
    }
    return job;
}

std::vector<BatchJob>
loadJobFile(const std::string &path)
{
    std::vector<BatchJob> jobs;
    for (const ServeJobSpec &spec : parseJobFile(path))
        jobs.push_back(loadServeJob(spec));
    return jobs;
}

} // namespace misam
