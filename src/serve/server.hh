/**
 * @file
 * MisamServer — a serving front-end over MisamFramework.
 *
 * Accepts SpGEMM jobs through a *bounded admission queue* (submit()
 * blocks while the queue is full — back-pressure instead of unbounded
 * memory growth), and a dispatcher thread drains the queue in admission
 * order, processing jobs in windows: feature extraction fans out over
 * the existing `util/parallel.hh` thread pool (and, when a SummaryCache
 * is attached to the framework, repeated operands skip summarization
 * entirely), while the ReconfigEngine's predict/decide pass stays
 * strictly serialized in admission order — the loaded-bitstream state
 * is a chain, so decision i must see the bitstream decision i-1 left
 * loaded.
 *
 * Scheduling: with `ServeConfig::schedule == SchedulePolicy::Lookahead`
 * the dispatcher plans each window with serve/lookahead.hh — jobs are
 * grouped by their decided design and executed group-by-group, so one
 * physical bitstream load amortizes over a run of same-design jobs;
 * with `prewarm` (partial-reconfig mode) the next group's load overlaps
 * the current group's execution. The decision chain still runs in
 * admission order, so per-job results are bit-identical to the
 * admission-order path; only the execution order (see
 * executionOrder()) and the physical switch accounting
 * (scheduleStats()) change.
 *
 * Determinism: results (features, predictions, decisions, simulated
 * cycles) are bit-identical to a serial `MisamFramework::executeBatch`
 * over the same jobs in the same admission order, for any thread count,
 * window size, queue capacity, or schedule policy — pinned by
 * tests/test_serve.cpp and tests/test_lookahead.cpp and exercised under
 * TSan by scripts/check.sh. Only wall-clock phase timings differ.
 *
 * Shutdown contract: every admitted job is either executed or listed in
 * rejected() — never silently dropped. stop(true) (and the destructor)
 * executes everything already admitted; stop(false) abandons the
 * not-yet-dispatched tail of the queue and reports it as rejected.
 * submit() after stop() is fatal.
 *
 * The framework must not be driven concurrently from outside while a
 * server owns it — the dispatcher is the only thread that may touch the
 * engine's bitstream chain.
 */

#ifndef MISAM_SERVE_SERVER_HH
#define MISAM_SERVE_SERVER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/misam.hh"
#include "serve/lookahead.hh"

namespace misam {

class MetricsSink;

/** Serving knobs. */
struct ServeConfig
{
    /** Admission-queue bound; submit() blocks at this depth. */
    std::size_t queue_capacity = 64;

    /**
     * Max jobs per dispatch window: the dispatcher pulls up to this
     * many queued jobs and fans their feature extraction out together.
     * Larger windows expose more extraction parallelism (and, under
     * Lookahead, more coalescing opportunity); smaller ones lower
     * per-job latency. Results are identical either way.
     */
    std::size_t window = 16;

    /** Extraction worker threads (0 = MISAM_THREADS / hardware). */
    unsigned threads = 0;

    /** Window execution order (serve/lookahead.hh). */
    SchedulePolicy schedule = SchedulePolicy::AdmissionOrder;

    /**
     * Overlap the next group's bitstream load with the current group's
     * execution (double-buffered dynamic regions; effective only under
     * ReconfigMode::Partial and SchedulePolicy::Lookahead). Accounting
     * only — results are unchanged.
     */
    bool prewarm = false;

    /**
     * Gather full windows before dispatching: the dispatcher waits
     * until `window` jobs are queued — instead of pulling whatever is
     * queued when it wakes — and stop()/drain() flush any partial
     * tail. Window boundaries (and therefore lookahead grouping
     * statistics) become deterministic regardless of producer /
     * dispatcher timing; per-job results are identical either way.
     * Requires queue_capacity >= window.
     */
    bool gather = false;
};

/**
 * A serving front-end: bounded admission, windowed parallel feature
 * extraction, planned execution, merged reporting in admission order.
 */
class MisamServer
{
  public:
    /** A job admitted but abandoned by stop(false). */
    struct RejectedJob
    {
        std::size_t index; ///< Admission index.
        std::string name;  ///< BatchJob name.
    };

    /** Starts the dispatcher thread. `framework` must be trained. */
    explicit MisamServer(MisamFramework &framework, ServeConfig config = {});

    MisamServer(const MisamServer &) = delete;
    MisamServer &operator=(const MisamServer &) = delete;

    /** stop(true), then joins the dispatcher. */
    ~MisamServer();

    /**
     * Admit one job; blocks while the queue is at capacity. Returns the
     * job's admission index (its position in the merged report).
     */
    std::size_t submit(BatchJob job);

    /**
     * Stop admission and settle every admitted job: with `drain_queue`
     * the dispatcher executes everything already admitted; without it,
     * queued-but-undispatched jobs are recorded in rejected() (a window
     * already being executed always completes). Returns once every
     * admitted job is executed or rejected. Idempotent — later calls
     * (including the destructor's) keep the first call's semantics.
     */
    void stop(bool drain_queue = true);

    /** Block until every admitted job is executed or rejected. */
    void drain();

    /** Submit every job, drain, and return the merged report so far. */
    BatchReport serveAll(std::vector<BatchJob> jobs);

    /**
     * Merged report of all completed jobs, in admission order
     * (snapshot; call drain() first for a complete view).
     */
    BatchReport report() const;

    /** Jobs admitted / completed so far. */
    std::size_t admitted() const;
    std::size_t completed() const;

    /** Jobs abandoned by stop(false), in admission order (snapshot). */
    std::vector<RejectedJob> rejected() const;

    /**
     * Admission indices in the order the jobs occupied the fabric
     * (snapshot). An exact permutation of [0, completed()) once
     * drained; identity under SchedulePolicy::AdmissionOrder.
     */
    std::vector<std::size_t> executionOrder() const;

    /** Accumulated lookahead planning statistics (snapshot). */
    ScheduleStats scheduleStats() const;

    /** Deepest the admission queue has been. */
    std::size_t queueHighWater() const;

    /**
     * Attach a metrics registry for the `serve.*` / `sched.*` /
     * `reconfig.prewarm.*` counters (see docs/OBSERVABILITY.md).
     * Attach before submitting; the caller keeps the registry alive.
     * Does not touch the framework's own registry attachment.
     */
    void setMetrics(MetricsRegistry *metrics);

    /**
     * Attach a JSONL sink: the dispatcher then emits `sched.window` /
     * `sched.group` events per lookahead window (emitScheduleEvents).
     * Attach before submitting; the caller keeps the sink alive.
     */
    void setTraceSink(MetricsSink *sink);

    /** Serving configuration. */
    const ServeConfig &config() const { return config_; }

  private:
    void dispatchLoop();

    MisamFramework &framework_;
    ServeConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable admit_cv_; ///< Signals queue capacity freed.
    std::condition_variable wake_cv_;  ///< Signals work or shutdown.
    std::condition_variable done_cv_;  ///< Signals completions/rejections.
    std::deque<BatchJob> queue_;
    BatchReport report_;
    ScheduleStats stats_;
    std::vector<std::size_t> execution_order_;
    std::vector<RejectedJob> rejected_;
    std::size_t admitted_ = 0;
    std::size_t dispatched_ = 0; ///< Admission index of queue_.front().
    std::size_t completed_ = 0;
    std::size_t drain_waiters_ = 0; ///< drain() callers flushing gather.
    std::size_t high_water_ = 0;
    bool stopping_ = false;
    bool abandon_ = false; ///< stop(false): reject the undispatched tail.
    MetricsRegistry *metrics_ = nullptr;
    MetricsSink *trace_sink_ = nullptr;

    /**
     * Design physically resident on the fabric — dispatcher-private.
     * Tracks the *executed* schedule, which can differ from the engine
     * chain's current design once lookahead reorders groups.
     */
    DesignId resident_;

    std::thread dispatcher_;
};

} // namespace misam

#endif // MISAM_SERVE_SERVER_HH
