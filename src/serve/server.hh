/**
 * @file
 * MisamServer — a serving front-end over MisamFramework.
 *
 * Accepts SpGEMM jobs through a *bounded admission queue* (submit()
 * blocks while the queue is full — back-pressure instead of unbounded
 * memory growth), and a dispatcher thread drains the queue in admission
 * order, processing jobs in windows: feature extraction fans out over
 * the existing `util/parallel.hh` thread pool (and, when a SummaryCache
 * is attached to the framework, repeated operands skip summarization
 * entirely), while the ReconfigEngine's predict/decide/execute pass
 * stays strictly serialized in admission order — the loaded-bitstream
 * state is a chain, so decision i must see the bitstream decision i-1
 * left loaded.
 *
 * Determinism: results (features, predictions, decisions, simulated
 * cycles) are bit-identical to a serial `MisamFramework::executeBatch`
 * over the same jobs in the same admission order, for any thread count,
 * window size, or queue capacity — pinned by tests/test_serve.cpp and
 * exercised under TSan by scripts/check.sh. Only wall-clock phase
 * timings differ.
 *
 * The framework must not be driven concurrently from outside while a
 * server owns it — the dispatcher is the only thread that may touch the
 * engine's bitstream chain.
 */

#ifndef MISAM_SERVE_SERVER_HH
#define MISAM_SERVE_SERVER_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/misam.hh"

namespace misam {

/** Serving knobs. */
struct ServeConfig
{
    /** Admission-queue bound; submit() blocks at this depth. */
    std::size_t queue_capacity = 64;

    /**
     * Max jobs per dispatch window: the dispatcher pulls up to this
     * many queued jobs and fans their feature extraction out together.
     * Larger windows expose more extraction parallelism; smaller ones
     * lower per-job latency. Results are identical either way.
     */
    std::size_t window = 16;

    /** Extraction worker threads (0 = MISAM_THREADS / hardware). */
    unsigned threads = 0;
};

/**
 * A serving front-end: bounded admission, windowed parallel feature
 * extraction, admission-ordered execution, merged reporting.
 */
class MisamServer
{
  public:
    /** Starts the dispatcher thread. `framework` must be trained. */
    explicit MisamServer(MisamFramework &framework, ServeConfig config = {});

    MisamServer(const MisamServer &) = delete;
    MisamServer &operator=(const MisamServer &) = delete;

    /** Drains outstanding jobs, then stops the dispatcher. */
    ~MisamServer();

    /**
     * Admit one job; blocks while the queue is at capacity. Returns the
     * job's admission index (its position in the merged report).
     */
    std::size_t submit(BatchJob job);

    /** Block until every admitted job has completed. */
    void drain();

    /** Submit every job, drain, and return the merged report so far. */
    BatchReport serveAll(std::vector<BatchJob> jobs);

    /**
     * Merged report of all completed jobs, in admission order
     * (snapshot; call drain() first for a complete view).
     */
    BatchReport report() const;

    /** Jobs admitted / completed so far. */
    std::size_t admitted() const;
    std::size_t completed() const;

    /** Deepest the admission queue has been. */
    std::size_t queueHighWater() const;

    /**
     * Attach a metrics registry for the `serve.*` counters (see
     * docs/OBSERVABILITY.md). Attach before submitting; the caller
     * keeps the registry alive. Does not touch the framework's own
     * registry attachment.
     */
    void setMetrics(MetricsRegistry *metrics);

    /** Serving configuration. */
    const ServeConfig &config() const { return config_; }

  private:
    void dispatchLoop();

    MisamFramework &framework_;
    ServeConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable admit_cv_; ///< Signals queue capacity freed.
    std::condition_variable wake_cv_;  ///< Signals work or shutdown.
    std::condition_variable done_cv_;  ///< Signals completions.
    std::deque<BatchJob> queue_;
    BatchReport report_;
    std::size_t admitted_ = 0;
    std::size_t completed_ = 0;
    std::size_t high_water_ = 0;
    bool stopping_ = false;
    MetricsRegistry *metrics_ = nullptr;

    std::thread dispatcher_;
};

} // namespace misam

#endif // MISAM_SERVE_SERVER_HH
