/**
 * @file
 * FleetRouter — sharded multi-board serving with bitstream-affinity
 * routing.
 *
 * `MisamServer` drives one simulated FPGA. The fleet router scales that
 * out: N board workers, each owning its own ReconfigEngine state
 * (physical resident design), a per-board lookahead plan, and a bounded
 * batch queue, behind one bounded admission queue. The dispatcher pulls
 * windows in admission order, runs the *global* predict/decide chain
 * exactly as MisamServer does, then routes each decided job to a board:
 *
 *  - **Affinity** (default): prefer a board whose resident bitstream
 *    already covers the job's decided design — `switchSeconds == 0`,
 *    which includes the shared partial-reconfig designs (a D2-resident
 *    board takes a D3 job for free). Among affine boards pick the one
 *    with the least predicted backlog; when no affine board has window
 *    capacity, fall back to the cheapest switch, then least backlog,
 *    then lowest id.
 *  - **LeastLoaded**: ignore affinity; least predicted backlog first,
 *    switch cost and id break ties.
 *
 * Routing is a pure function (`planFleetWindow`) of the decisions,
 * per-job predicted latencies, arrival times, and the boards' logical
 * state — no wall clock, no queue-depth races — so placements, the
 * `fleet.route` trace, and every counter are byte-stable for any
 * `MISAM_THREADS` and any producer/dispatcher interleaving. Each
 * board's slice of the window is then re-planned with
 * `planLookaheadWindow` against that board's resident design, so a
 * board pays one physical load per same-design group.
 *
 * Determinism contract: the decision chain is global and serial in
 * admission order — job i's decision never depends on where jobs are
 * placed — so per-job results are bit-identical across routing
 * policies, board counts, and thread counts, and a 1-board fleet is
 * bit-identical to MisamServer (pinned by tests/test_fleet.cpp). Only
 * the physical accounting (paid loads, logical queueing delay) differs
 * between policies; that difference is what bench_fleet measures.
 *
 * Shutdown contract (the MisamServer contract generalized to a fleet):
 * every admitted job is executed or listed in rejected() — never
 * silently dropped. stop(true)/the destructor drains the admission
 * queue and every board queue; stop(false) rejects the undispatched
 * admission tail *and* each board's not-yet-started batches (a batch
 * already executing finishes). `admitted == completed + rejected`
 * holds fleet-wide, and `routed == completed + rejected` per board.
 */

#ifndef MISAM_SERVE_FLEET_HH
#define MISAM_SERVE_FLEET_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/misam.hh"
#include "reconfig/engine.hh"
#include "serve/lookahead.hh"

namespace misam {

class MetricsRegistry;
class MetricsSink;

/** Fleet routing policy. */
enum class RoutePolicy {
    Affinity,   ///< Resident/shared bitstream first, cost fallback.
    LeastLoaded ///< Predicted backlog only; affinity ignored.
};

/** Stable policy name ("affinity" / "least-loaded"). */
const char *routePolicyName(RoutePolicy policy);

/** Parse a policy name; fatal() on anything else. */
RoutePolicy parseRoutePolicy(const std::string &name);

/** Knobs of the fleet router. */
struct FleetConfig
{
    std::size_t boards = 2;          ///< Board workers (>= 1).
    RoutePolicy route = RoutePolicy::Affinity;
    std::size_t queue_capacity = 64; ///< Admission queue bound.
    std::size_t window = 16;         ///< Routing window (jobs).
    /**
     * Max jobs routed to one board per window — the affinity spill
     * valve: once a board's slice is full the planner spills to the
     * next-best board instead of pinning one board per design. Also
     * bounds each board's batch queue (in windows of this size).
     */
    std::size_t board_capacity = 8;
    unsigned threads = 0;            ///< Extraction fan-out (0 = auto).
    /** Hold windows until `window` jobs gathered (or a drain). */
    bool gather = false;
};

/** Router-visible logical state of one board (pure planning input). */
struct BoardState
{
    DesignId resident = DesignId::D1; ///< Design loaded on the fabric.
    double ready_s = 0.0; ///< Predicted logical time the backlog drains.
};

/** One job's placement verdict. */
struct RouteChoice
{
    std::size_t board = 0;
    bool affine = false;  ///< Placed without paying a bitstream load.
    double switch_s = 0.0; ///< Load seconds the placement adds.
};

/** One window's fleet placement plus per-board lookahead plans. */
struct FleetWindowPlan
{
    std::vector<RouteChoice> routes; ///< Per window job.
    /** Window-relative job indices per board, in routed order. */
    std::vector<std::vector<std::size_t>> board_jobs;
    /** Per-board lookahead plan (empty groups when a board got none). */
    std::vector<WindowPlan> board_plans;
    /** Free (shared-bitstream) design moves per board, routed order. */
    std::vector<int> board_free_moves;
    std::size_t affine_routed = 0;   ///< Placements with switch_s == 0.
    std::size_t fallback_routed = 0; ///< Placements that pay a switch.
    int paid_loads = 0;   ///< Sum of board plans' physical loads.
    int free_moves = 0;   ///< Design changes on a shared bitstream.
    double paid_reconfig_s = 0.0; ///< Seconds of the paid loads.
};

/**
 * Route one window. `decisions[i]` is job i's (globally) decided
 * design, `est_latency_s[i]` its predicted execute seconds (already
 * scaled by repetitions), `arrival_s[i]` its logical arrival. Advances
 * `boards` (resident designs and predicted backlogs) in place.
 * Deterministic: ties break toward the lowest board id.
 */
FleetWindowPlan planFleetWindow(const std::vector<ReconfigDecision> &decisions,
                                const std::vector<double> &est_latency_s,
                                const std::vector<double> &arrival_s,
                                RoutePolicy policy,
                                const ReconfigTimeModel &time_model,
                                std::size_t board_capacity,
                                std::vector<BoardState> &boards);

/**
 * Emit the window's `fleet.route` (one per job, admission order) and
 * `fleet.board` (one per board with jobs, board order) events.
 * `base_index` is the admission index of the window's first job;
 * `boards_after` is the board state planFleetWindow left behind.
 */
void emitFleetEvents(MetricsSink &sink, const FleetWindowPlan &plan,
                     const std::vector<ReconfigDecision> &decisions,
                     std::size_t base_index,
                     const std::vector<BoardState> &boards_after);

/** Nearest-rank percentile of the jobs' logical queueing waits. */
double waitPercentileSeconds(std::vector<double> waits, double pct);

class FleetRouter
{
  public:
    /** A job settled as rejected by the shutdown contract. */
    struct RejectedJob
    {
        std::size_t index;  ///< Admission index.
        std::string name;
        /** Board that abandoned it, or kRouterRejected for jobs the
         *  dispatcher never routed. */
        std::size_t board;
    };
    static constexpr std::size_t kRouterRejected = std::size_t(-1);

    /** Logical placement record of one completed job. */
    struct Placement
    {
        std::size_t board = 0;
        bool affine = false;
        double arrival_s = 0.0;
        double start_s = 0.0;  ///< max(arrival, board clock) + loads.
        double wait_s = 0.0;   ///< start - arrival: queueing latency.
        double finish_s = 0.0; ///< start + execute seconds.
    };

    /** Per-board outcome totals. */
    struct BoardTotals
    {
        std::size_t routed = 0;
        std::size_t completed = 0;
        std::size_t rejected = 0;
        int paid_loads = 0;
        int free_moves = 0;
        double paid_reconfig_s = 0.0;
        double busy_s = 0.0;    ///< Executed seconds (x repetitions).
        double finish_s = 0.0;  ///< Board logical clock after last job.
        DesignId resident = DesignId::D1; ///< Physical resident design.
        ScheduleStats stats;    ///< Per-board lookahead accounting.
    };

    /** Spawns the dispatcher and one worker per board. */
    FleetRouter(MisamFramework &framework, FleetConfig config = {});
    ~FleetRouter();

    FleetRouter(const FleetRouter &) = delete;
    FleetRouter &operator=(const FleetRouter &) = delete;

    /** Blocking bounded admission; returns the admission index. */
    std::size_t submit(BatchJob job, double arrival_s = 0.0);

    /** Stop and settle every admitted job (see shutdown contract). */
    void stop(bool drain_queue = true);

    /** Wait for every admitted job to settle without stopping. */
    void drain();

    /** submit-all + drain + report, in one call. */
    BatchReport serveAll(std::vector<BatchJob> jobs);

    /**
     * Completed jobs in admission order, with totals accumulated in
     * that order — bit-identical to MisamServer's report for a 1-board
     * fleet over the same stream.
     */
    BatchReport report() const;

    /** Placements parallel to report().jobs (admission order). */
    std::vector<Placement> placements() const;

    /** Rejections sorted by admission index. */
    std::vector<RejectedJob> rejected() const;

    std::size_t admitted() const;
    std::size_t completed() const;

    /** Per-board totals (index == board id). */
    std::vector<BoardTotals> boardTotals() const;

    /** Max board logical finish time — fleet makespan. */
    double makespanSeconds() const;

    std::size_t queueHighWater() const;

    void setMetrics(MetricsRegistry *metrics);
    void setTraceSink(MetricsSink *sink);

    const FleetConfig &config() const { return config_; }

  private:
    struct AdmittedJob
    {
        BatchJob job;
        double arrival_s = 0.0;
    };

    /** One routed per-board slice of a window. */
    struct BoardBatch
    {
        std::vector<std::size_t> indices; ///< Admission indices.
        std::vector<BatchJob> jobs;       ///< Parallel to indices.
        std::vector<ExecutionReport> partial; ///< Decided reports.
        std::vector<double> arrivals;
        WindowPlan plan; ///< Batch-relative lookahead plan.
        int free_moves = 0;
    };

    /** One board worker: queue, thread, and its physical engine. */
    struct Board
    {
        std::unique_ptr<ReconfigEngine> engine; ///< Resident tracking.
        std::thread worker;
        std::deque<BoardBatch> batches; ///< Guarded by the fleet mutex.
        std::size_t queued_jobs = 0;    ///< Jobs in `batches`.
        double clock_s = 0.0;           ///< Board logical time.
        BoardTotals totals;
    };

    struct JobSlot
    {
        bool done = false;
        ExecutionReport result;
        Placement place;
    };

    void dispatchLoop();
    void boardLoop(std::size_t board_id);
    void runBoardBatch(std::size_t board_id, BoardBatch batch,
                       std::unique_lock<std::mutex> &lock);
    bool allSettledLocked() const;

    MisamFramework &framework_;
    FleetConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable admit_cv_; ///< Admission-capacity waiters.
    std::condition_variable wake_cv_;  ///< Dispatcher wakeups.
    std::condition_variable board_cv_; ///< Board-worker wakeups.
    std::condition_variable space_cv_; ///< Board-queue-capacity waiters.
    std::condition_variable done_cv_;  ///< Settlement waiters.

    std::deque<AdmittedJob> queue_;
    std::size_t admitted_ = 0;
    std::size_t dispatched_ = 0;
    std::size_t completed_ = 0;
    std::size_t high_water_ = 0;
    std::size_t drain_waiters_ = 0;
    bool stopping_ = false;
    bool abandon_ = false;
    bool boards_stopping_ = false;

    std::vector<JobSlot> slots_; ///< Indexed by admission index.
    std::vector<RejectedJob> rejected_;
    std::vector<std::unique_ptr<Board>> boards_;
    std::vector<BoardState> board_states_; ///< Dispatcher-private.

    MetricsRegistry *metrics_ = nullptr;
    MetricsSink *trace_sink_ = nullptr;

    std::thread dispatcher_;
};

} // namespace misam

#endif // MISAM_SERVE_FLEET_HH
