#include "serve/server.hh"

#include <utility>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace misam {

MisamServer::MisamServer(MisamFramework &framework, ServeConfig config)
    : framework_(framework), config_(config)
{
    if (config_.queue_capacity == 0)
        fatal("MisamServer: queue_capacity must be positive");
    if (config_.window == 0)
        fatal("MisamServer: window must be positive");
    if (!framework_.trained())
        fatal("MisamServer: framework must be trained before serving");
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

MisamServer::~MisamServer()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_cv_.notify_all();
    admit_cv_.notify_all();
    dispatcher_.join();
}

std::size_t
MisamServer::submit(BatchJob job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    admit_cv_.wait(lock, [this] {
        return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_)
        fatal("MisamServer::submit: server is shutting down");
    queue_.push_back(std::move(job));
    const std::size_t index = admitted_++;
    high_water_ = std::max(high_water_, queue_.size());
    if (metrics_) {
        metrics_->add("serve.admitted");
        metrics_->set("serve.queue_high_water",
                      static_cast<double>(high_water_));
    }
    lock.unlock();
    wake_cv_.notify_one();
    return index;
}

void
MisamServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [this] { return completed_ == admitted_; });
}

BatchReport
MisamServer::serveAll(std::vector<BatchJob> jobs)
{
    for (BatchJob &job : jobs)
        submit(std::move(job));
    drain();
    return report();
}

BatchReport
MisamServer::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return report_;
}

std::size_t
MisamServer::admitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

std::size_t
MisamServer::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::size_t
MisamServer::queueHighWater() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
}

void
MisamServer::setMetrics(MetricsRegistry *metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = metrics;
}

void
MisamServer::dispatchLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_cv_.wait(lock,
                      [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        // Pull one window in admission order; popping frees admission
        // capacity immediately, so producers refill while we execute.
        std::vector<BatchJob> window;
        const std::size_t n = std::min(config_.window, queue_.size());
        window.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            window.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        MetricsRegistry *metrics = metrics_;
        lock.unlock();
        admit_cv_.notify_all();
        if (metrics)
            metrics->add("serve.windows");

        // executeBatch fans extraction over the pool and keeps the
        // engine chain serial in window (== admission) order; engine
        // state persists in the framework across windows, so the
        // concatenation of windows is exactly one serial batch.
        BatchReport part = framework_.executeBatch(window,
                                                   config_.threads);

        lock.lock();
        for (ExecutionReport &rep : part.jobs)
            report_.jobs.push_back(std::move(rep));
        report_.total_execute_s += part.total_execute_s;
        report_.total_reconfig_s += part.total_reconfig_s;
        report_.total_host_s += part.total_host_s;
        report_.reconfigurations += part.reconfigurations;
        completed_ += n;
        if (metrics_)
            metrics_->add("serve.completed", n);
        done_cv_.notify_all();
    }
}

} // namespace misam
