#include "serve/server.hh"

#include <utility>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace misam {

MisamServer::MisamServer(MisamFramework &framework, ServeConfig config)
    : framework_(framework), config_(config)
{
    if (config_.queue_capacity == 0)
        fatal("MisamServer: queue_capacity must be positive");
    if (config_.window == 0)
        fatal("MisamServer: window must be positive");
    if (config_.gather && config_.queue_capacity < config_.window)
        fatal("MisamServer: gather mode requires queue_capacity >= "
              "window");
    if (!framework_.trained())
        fatal("MisamServer: framework must be trained before serving");
    resident_ = framework_.engine().currentDesign();
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

MisamServer::~MisamServer()
{
    stop(true);
    dispatcher_.join();
}

std::size_t
MisamServer::submit(BatchJob job)
{
    std::unique_lock<std::mutex> lock(mutex_);
    admit_cv_.wait(lock, [this] {
        return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_)
        fatal("MisamServer::submit: server is shutting down");
    queue_.push_back(std::move(job));
    const std::size_t index = admitted_++;
    high_water_ = std::max(high_water_, queue_.size());
    if (metrics_) {
        metrics_->add("serve.admitted");
        metrics_->set("serve.queue_high_water",
                      static_cast<double>(high_water_));
    }
    lock.unlock();
    wake_cv_.notify_one();
    return index;
}

void
MisamServer::stop(bool drain_queue)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stopping_) {
        stopping_ = true;
        abandon_ = !drain_queue;
        wake_cv_.notify_all();
        admit_cv_.notify_all();
    }
    // The shutdown contract: stop() returns only once every admitted
    // job is settled — executed by the dispatcher, or moved to the
    // rejected list. Nothing is ever silently dropped.
    done_cv_.wait(lock, [this] {
        return completed_ + rejected_.size() == admitted_;
    });
}

void
MisamServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    // Under gather the dispatcher holds out for a full window; a drain
    // waiter forces it to flush the partial tail instead of deadlocking.
    ++drain_waiters_;
    wake_cv_.notify_all();
    done_cv_.wait(lock, [this] {
        return completed_ + rejected_.size() == admitted_;
    });
    --drain_waiters_;
}

BatchReport
MisamServer::serveAll(std::vector<BatchJob> jobs)
{
    for (BatchJob &job : jobs)
        submit(std::move(job));
    drain();
    return report();
}

BatchReport
MisamServer::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return report_;
}

std::size_t
MisamServer::admitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

std::size_t
MisamServer::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::vector<MisamServer::RejectedJob>
MisamServer::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

std::vector<std::size_t>
MisamServer::executionOrder() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return execution_order_;
}

ScheduleStats
MisamServer::scheduleStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
MisamServer::queueHighWater() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
}

void
MisamServer::setMetrics(MetricsRegistry *metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = metrics;
}

void
MisamServer::setTraceSink(MetricsSink *sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trace_sink_ = sink;
}

void
MisamServer::dispatchLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_cv_.wait(lock, [this] {
            if (stopping_)
                return true;
            if (queue_.empty())
                return false;
            // Gather mode: hold out for a full window unless a drain
            // waiter needs the partial tail flushed.
            return !config_.gather ||
                   queue_.size() >= config_.window || drain_waiters_ > 0;
        });
        if (abandon_ && !queue_.empty()) {
            // stop(false): settle the undispatched tail as rejections —
            // the explicit record that these jobs never executed.
            while (!queue_.empty()) {
                rejected_.push_back(
                    {dispatched_++, std::move(queue_.front().name)});
                queue_.pop_front();
            }
            if (metrics_)
                metrics_->add("serve.rejected", rejected_.size());
            done_cv_.notify_all();
            return;
        }
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }

        // Pull one window in admission order; popping frees admission
        // capacity immediately, so producers refill while we execute.
        std::vector<BatchJob> window;
        const std::size_t n = std::min(config_.window, queue_.size());
        window.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            window.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        const std::size_t base = dispatched_;
        dispatched_ += n;
        MetricsRegistry *metrics = metrics_;
        MetricsSink *sink = trace_sink_;
        lock.unlock();
        admit_cv_.notify_all();
        if (metrics)
            metrics->add("serve.windows");

        // executeBatch fans extraction over the pool and keeps the
        // engine's decision chain serial in window (== admission)
        // order; engine state persists in the framework across windows,
        // so the concatenation of windows is exactly one serial batch.
        // Under Lookahead the plan hook then reorders only the
        // *simulations* into same-design groups, so the window pays one
        // physical load per group instead of one per chain flip.
        BatchReport part;
        WindowPlan wplan;
        WindowAccounting acct;
        const bool lookahead =
            config_.schedule == SchedulePolicy::Lookahead;
        if (lookahead) {
            const ReconfigTimeModel &time_model =
                framework_.engine().config().time_model;
            part = framework_.executeBatch(
                window, config_.threads,
                [&](const std::vector<ReconfigDecision> &decisions) {
                    wplan = planLookaheadWindow(decisions, resident_,
                                                time_model);
                    return wplan.order;
                });
            std::vector<double> group_execute_s(wplan.groups.size(), 0.0);
            for (std::size_t g = 0; g < wplan.groups.size(); ++g)
                for (const std::size_t j : wplan.groups[g].jobs)
                    group_execute_s[g] +=
                        part.jobs[j].breakdown.execute_s;
            acct = accountLookaheadWindow(wplan, group_execute_s,
                                          time_model, config_.prewarm);
            resident_ = wplan.resident_after;
            if (sink)
                emitScheduleEvents(*sink, wplan, acct);
        } else {
            part = framework_.executeBatch(window, config_.threads);
            if (!part.jobs.empty())
                resident_ =
                    part.jobs.back().decision.chosen;
        }

        lock.lock();
        for (ExecutionReport &rep : part.jobs)
            report_.jobs.push_back(std::move(rep));
        report_.total_execute_s += part.total_execute_s;
        report_.total_reconfig_s += part.total_reconfig_s;
        report_.total_host_s += part.total_host_s;
        report_.reconfigurations += part.reconfigurations;
        report_.free_switches += part.free_switches;
        if (lookahead) {
            stats_.accumulate(wplan, acct);
            for (const std::size_t j : wplan.order)
                execution_order_.push_back(base + j);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                execution_order_.push_back(base + i);
        }
        completed_ += n;
        if (metrics_) {
            metrics_->add("serve.completed", n);
            if (lookahead) {
                metrics_->add("sched.windows");
                metrics_->add("sched.groups", wplan.groups.size());
                metrics_->add("sched.reordered_jobs",
                              wplan.reordered_jobs);
                metrics_->add("sched.paid_loads",
                              static_cast<std::uint64_t>(
                                  wplan.paid_loads));
                const int coalesced =
                    wplan.planned_reconfigs - wplan.paid_loads;
                if (coalesced > 0)
                    metrics_->add(
                        "sched.coalesced_switches",
                        static_cast<std::uint64_t>(coalesced));
                if (acct.prewarm_loads > 0)
                    metrics_->add("reconfig.prewarm.loads",
                                  static_cast<std::uint64_t>(
                                      acct.prewarm_loads));
                metrics_->addSeconds("reconfig.prewarm.overlapped_s",
                                     acct.overlapped_reconfig_s);
                metrics_->addSeconds("reconfig.prewarm.exposed_s",
                                     acct.exposed_reconfig_s);
            }
        }
        done_cv_.notify_all();
    }
}

} // namespace misam
