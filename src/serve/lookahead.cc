#include "serve/lookahead.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace misam {

const char *
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::AdmissionOrder:
        return "admission";
      case SchedulePolicy::Lookahead:
        return "lookahead";
    }
    return "?";
}

WindowPlan
planLookaheadWindow(const std::vector<ReconfigDecision> &decisions,
                    DesignId resident, const ReconfigTimeModel &time_model)
{
    WindowPlan plan;
    plan.resident_after = resident;
    if (decisions.empty())
        return plan;

    // Bucket jobs by the chain's chosen design, groups keyed by first
    // appearance so the plan is a pure function of the decision list.
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const DesignId chosen = decisions[i].chosen;
        auto it = std::find_if(plan.groups.begin(), plan.groups.end(),
                               [chosen](const LookaheadGroup &g) {
                                   return g.design == chosen;
                               });
        if (it == plan.groups.end()) {
            plan.groups.push_back({chosen, {}, false, 0.0});
            it = std::prev(plan.groups.end());
        }
        it->jobs.push_back(i);
        if (decisions[i].reconfigure) {
            ++plan.planned_reconfigs;
            plan.planned_reconfig_s += decisions[i].overhead_s;
        }
    }

    // Execute the group that can reuse the resident bitstream first (no
    // load to expose at the window's front), then the rest in first-
    // admission order. stable_partition keeps ties deterministic.
    std::stable_partition(plan.groups.begin(), plan.groups.end(),
                          [&](const LookaheadGroup &g) {
                              return time_model.switchSeconds(
                                         resident, g.design) == 0.0;
                          });

    DesignId loaded = resident;
    for (LookaheadGroup &group : plan.groups) {
        const double cost = time_model.switchSeconds(loaded, group.design);
        if (cost > 0.0) {
            group.loads_bitstream = true;
            group.load_seconds = cost;
            ++plan.paid_loads;
            plan.paid_reconfig_s += cost;
        }
        loaded = group.design;
        for (std::size_t job : group.jobs)
            plan.order.push_back(job);
    }
    plan.resident_after = loaded;

    if (plan.order.size() != decisions.size())
        panic("planLookaheadWindow: order is not a permutation");
    for (std::size_t k = 0; k < plan.order.size(); ++k)
        if (plan.order[k] != k)
            ++plan.reordered_jobs;
    return plan;
}

WindowAccounting
accountLookaheadWindow(const WindowPlan &plan,
                       const std::vector<double> &group_execute_s,
                       const ReconfigTimeModel &time_model, bool prewarm)
{
    if (group_execute_s.size() != plan.groups.size())
        fatal("accountLookaheadWindow: ", group_execute_s.size(),
              " execute totals for ", plan.groups.size(), " groups");

    WindowAccounting acct;
    for (double s : group_execute_s)
        acct.execute_s += s;

    // Prewarm needs a second dynamic region to write into while the
    // resident one keeps executing — only the Partial mode has one.
    const bool overlap_capable =
        prewarm && time_model.mode == ReconfigMode::Partial;
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
        const LookaheadGroup &group = plan.groups[g];
        if (!group.loads_bitstream)
            continue;
        if (!overlap_capable || g == 0) {
            // Nothing executes ahead of the first group; its load — and
            // every load without a double-buffered region — stalls.
            acct.exposed_reconfig_s += group.load_seconds;
            continue;
        }
        ++acct.prewarm_loads;
        const double overlapped =
            std::min(group.load_seconds, group_execute_s[g - 1]);
        acct.overlapped_reconfig_s += overlapped;
        acct.exposed_reconfig_s += group.load_seconds - overlapped;
    }
    return acct;
}

void
ScheduleStats::accumulate(const WindowPlan &plan,
                          const WindowAccounting &acct)
{
    ++windows;
    jobs += plan.order.size();
    groups += plan.groups.size();
    reordered_jobs += plan.reordered_jobs;
    planned_reconfigs += plan.planned_reconfigs;
    paid_loads += plan.paid_loads;
    prewarm_loads += acct.prewarm_loads;
    planned_reconfig_s += plan.planned_reconfig_s;
    paid_reconfig_s += plan.paid_reconfig_s;
    overlapped_reconfig_s += acct.overlapped_reconfig_s;
    exposed_reconfig_s += acct.exposed_reconfig_s;
    execute_s += acct.execute_s;
}

void
emitScheduleEvents(MetricsSink &sink, const WindowPlan &plan,
                   const WindowAccounting &acct)
{
    sink.event("sched.window",
               {{"jobs", std::uint64_t(plan.order.size())},
                {"groups", std::uint64_t(plan.groups.size())},
                {"reordered", std::uint64_t(plan.reordered_jobs)},
                {"planned_reconfigs", plan.planned_reconfigs},
                {"paid_loads", plan.paid_loads},
                {"prewarm_loads", acct.prewarm_loads},
                {"planned_reconfig_s", plan.planned_reconfig_s},
                {"paid_reconfig_s", plan.paid_reconfig_s},
                {"overlapped_s", acct.overlapped_reconfig_s},
                {"exposed_s", acct.exposed_reconfig_s},
                {"execute_s", acct.execute_s},
                {"resident_after", designName(plan.resident_after)}});
    for (const LookaheadGroup &group : plan.groups) {
        sink.event("sched.group",
                   {{"design", designName(group.design)},
                    {"jobs", std::uint64_t(group.jobs.size())},
                    {"first_job", std::uint64_t(group.jobs.front())},
                    {"loads_bitstream",
                     std::uint64_t(group.loads_bitstream ? 1 : 0)},
                    {"load_s", group.load_seconds}});
    }
}

} // namespace misam
