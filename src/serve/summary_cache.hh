/**
 * @file
 * Content-addressed operand cache for the serving layer.
 *
 * The paper's headline serving scenario multiplies one pruned DNN
 * weight matrix B against a stream of activation tiles; Misam's host
 * overhead stays negligible only if the pipeline does not re-derive B's
 * feature summary on every request. SummaryCache memoizes
 * `summarizeMatrix` results (and optionally `csrToCsc` conversions)
 * keyed by a 128-bit content fingerprint of shape + row_ptr + col_idx +
 * values — so repeated operands (the shared-B inference case, repeated
 * SuiteSparse matrices in benches) skip summarization entirely.
 *
 * Concurrency: safe for concurrent lookups (the feature-extraction
 * fan-out of `MisamFramework::executeBatch` hits it from pool workers).
 * Each distinct fingerprint is computed exactly once — concurrent
 * requesters for a key being computed block on a shared_future instead
 * of duplicating the work — which also makes the hit/miss counters
 * deterministic for any thread count: `misses == distinct operands`,
 * `hits == lookups - misses`, always.
 *
 * Determinism: cached values are pure functions of matrix content, so
 * routing through the cache never changes a result — only the time (and
 * bytes scanned) spent producing it. Pinned by tests/test_serve.cpp.
 */

#ifndef MISAM_SERVE_SUMMARY_CACHE_HH
#define MISAM_SERVE_SUMMARY_CACHE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "features/features.hh"
#include "sparse/fingerprint.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"

namespace misam {

class MetricsRegistry;

/** Cache sizing and behavior knobs. */
struct SummaryCacheConfig
{
    /**
     * Soft bound on entries per kind (summaries / CSC conversions).
     * When exceeded, the oldest *ready* entry is evicted FIFO; entries
     * still being computed are never evicted, so the bound can be
     * transiently overshot by the number of in-flight computations.
     */
    std::size_t max_entries = 256;

    /** Tiling geometry passed through to summarizeMatrix. */
    FeatureTileConfig tile_config{};

    /**
     * Test seam: invoked at the start of every summary computation,
     * outside the cache lock. Lets tests hold entries in the in-flight
     * state deterministically (e.g. to pin the eviction accounting
     * under overshoot). Leave empty in production.
     */
    std::function<void()> summary_compute_hook;
};

/**
 * Thread-safe content-addressed memoization of per-matrix feature
 * summaries and CSR->CSC conversions.
 */
class SummaryCache
{
  public:
    explicit SummaryCache(SummaryCacheConfig config = {});

    SummaryCache(const SummaryCache &) = delete;
    SummaryCache &operator=(const SummaryCache &) = delete;

    /**
     * The feature summary of `m`, computed on first sight of this
     * content and returned from cache afterwards. Never returns null.
     */
    std::shared_ptr<const MatrixFeatureSummary> summary(const CsrMatrix &m);

    /** The CSC conversion of `m`, memoized the same way. */
    std::shared_ptr<const CscMatrix> csc(const CsrMatrix &m);

    /**
     * Attach a metrics registry (nullptr detaches; caller keeps it
     * alive). Lookups then mirror into the `cache.*` counters
     * (docs/OBSERVABILITY.md). Attach before concurrent use.
     */
    void setMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }

    /** Lifetime hit/miss/byte counters (also mirrored to `cache.*`). */
    std::uint64_t
    summaryHits() const
    {
        return summary_hits_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    summaryMisses() const
    {
        return summary_misses_.load(std::memory_order_relaxed);
    }

    /**
     * Operand bytes a hit did not have to re-scan: the CSR footprint
     * (row_ptr + col_idx + values) of every matrix served from cache.
     */
    std::uint64_t
    summaryBytesSaved() const
    {
        return summary_bytes_saved_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    cscHits() const
    {
        return csc_hits_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    cscMisses() const
    {
        return csc_misses_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /** Cached entry counts (ready + in-flight). */
    std::size_t summaryEntries() const;
    std::size_t cscEntries() const;

    /** Drop every cached entry (counters keep accumulating). */
    void clear();

    /** CSR byte footprint used for the bytes-saved accounting. */
    static std::uint64_t matrixBytes(const CsrMatrix &m);

  private:
    template <typename V>
    struct Shard
    {
        using Future = std::shared_future<std::shared_ptr<const V>>;
        std::unordered_map<Fingerprint128, Future, FingerprintHash> map;
        std::deque<Fingerprint128> fifo; ///< Insertion order, for eviction.
    };

    /** find-or-compute with exactly-once semantics per fingerprint. */
    template <typename V, typename ComputeFn>
    std::shared_ptr<const V> lookup(Shard<V> &shard, const CsrMatrix &m,
                                    ComputeFn &&compute,
                                    std::atomic<std::uint64_t> &hits,
                                    std::atomic<std::uint64_t> &misses,
                                    std::atomic<std::uint64_t> *bytes_saved,
                                    const char *hit_name,
                                    const char *miss_name,
                                    const char *bytes_name);

    template <typename V> void evictIfOverFull(Shard<V> &shard);

    SummaryCacheConfig config_;
    mutable std::mutex mutex_;
    Shard<MatrixFeatureSummary> summaries_;
    Shard<CscMatrix> cscs_;

    std::atomic<std::uint64_t> summary_hits_{0};
    std::atomic<std::uint64_t> summary_misses_{0};
    std::atomic<std::uint64_t> summary_bytes_saved_{0};
    std::atomic<std::uint64_t> csc_hits_{0};
    std::atomic<std::uint64_t> csc_misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    MetricsRegistry *metrics_ = nullptr;
};

} // namespace misam

#endif // MISAM_SERVE_SUMMARY_CACHE_HH
