#include "serve/fleet.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/parallel.hh"

namespace misam {

const char *
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
    case RoutePolicy::Affinity:
        return "affinity";
    case RoutePolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

RoutePolicy
parseRoutePolicy(const std::string &name)
{
    if (name == "affinity")
        return RoutePolicy::Affinity;
    if (name == "least-loaded")
        return RoutePolicy::LeastLoaded;
    fatal("unknown route policy '", name,
          "' (expected affinity or least-loaded)");
}

FleetWindowPlan
planFleetWindow(const std::vector<ReconfigDecision> &decisions,
                const std::vector<double> &est_latency_s,
                const std::vector<double> &arrival_s, RoutePolicy policy,
                const ReconfigTimeModel &time_model,
                std::size_t board_capacity, std::vector<BoardState> &boards)
{
    const std::size_t n = decisions.size();
    if (est_latency_s.size() != n || arrival_s.size() != n)
        panic("planFleetWindow: input vectors disagree on the job count");
    if (boards.empty())
        fatal("planFleetWindow: need at least one board");
    const std::size_t num_boards = boards.size();
    // Capacity 0 means unbounded (every job may land on one board).
    const std::size_t cap = board_capacity == 0 ? n + 1 : board_capacity;

    FleetWindowPlan plan;
    plan.routes.resize(n);
    plan.board_jobs.assign(num_boards, {});
    plan.board_plans.resize(num_boards);
    plan.board_free_moves.assign(num_boards, 0);

    // `last_design[b]` tracks the design the board would hold after the
    // jobs routed to it so far this window, in routed order; the
    // per-board lookahead plan below regroups against the *entry*
    // resident design, which is what the fabric actually holds.
    std::vector<DesignId> entry_resident(num_boards);
    std::vector<DesignId> last_design(num_boards);
    for (std::size_t b = 0; b < num_boards; ++b)
        entry_resident[b] = last_design[b] = boards[b].resident;

    for (std::size_t i = 0; i < n; ++i) {
        const DesignId design = decisions[i].chosen;
        const auto switch_cost = [&](std::size_t b) {
            return time_model.switchSeconds(last_design[b], design);
        };
        const auto has_capacity = [&](std::size_t b) {
            return plan.board_jobs[b].size() < cap;
        };

        std::size_t pick = num_boards;
        if (policy == RoutePolicy::Affinity) {
            // Affine pass: boards whose resident bitstream covers the
            // design for free (same design, or the shared D2/D3 pair).
            for (std::size_t b = 0; b < num_boards; ++b) {
                if (!has_capacity(b) || switch_cost(b) != 0.0)
                    continue;
                if (pick == num_boards ||
                    boards[b].ready_s < boards[pick].ready_s)
                    pick = b;
            }
        }
        if (pick == num_boards) {
            // Cost/benefit fallback (and the whole LeastLoaded policy):
            // lexicographic over (switch cost, backlog) — Affinity puts
            // cost first, LeastLoaded backlog first — id breaks ties.
            // First pass respects window capacity; if every board is
            // full the window overflows capacity rather than dropping.
            for (int pass = 0; pass < 2 && pick == num_boards; ++pass) {
                for (std::size_t b = 0; b < num_boards; ++b) {
                    if (pass == 0 && !has_capacity(b))
                        continue;
                    if (pick == num_boards) {
                        pick = b;
                        continue;
                    }
                    const double cost_b = switch_cost(b);
                    const double cost_p = switch_cost(pick);
                    const double ready_b = boards[b].ready_s;
                    const double ready_p = boards[pick].ready_s;
                    bool better;
                    if (policy == RoutePolicy::Affinity)
                        better = cost_b < cost_p ||
                                 (cost_b == cost_p && ready_b < ready_p);
                    else
                        better = ready_b < ready_p ||
                                 (ready_b == ready_p && cost_b < cost_p);
                    if (better)
                        pick = b;
                }
            }
        }

        const double switch_s = switch_cost(pick);
        plan.routes[i] = RouteChoice{pick, switch_s == 0.0, switch_s};
        if (switch_s == 0.0)
            ++plan.affine_routed;
        else
            ++plan.fallback_routed;
        if (last_design[pick] != design && switch_s == 0.0) {
            ++plan.free_moves;
            ++plan.board_free_moves[pick];
        }
        boards[pick].ready_s =
            std::max(boards[pick].ready_s, arrival_s[i]) + switch_s +
            est_latency_s[i];
        last_design[pick] = design;
        plan.board_jobs[pick].push_back(i);
    }

    // Re-plan each board's slice against its entry resident design:
    // same-design runs coalesce into one physical load exactly as a
    // single-board lookahead window would.
    for (std::size_t b = 0; b < num_boards; ++b) {
        if (plan.board_jobs[b].empty())
            continue;
        std::vector<ReconfigDecision> board_chain;
        board_chain.reserve(plan.board_jobs[b].size());
        DesignId prev = entry_resident[b];
        for (const std::size_t j : plan.board_jobs[b]) {
            ReconfigDecision step;
            step.chosen = decisions[j].chosen;
            step.overhead_s = time_model.switchSeconds(prev, step.chosen);
            step.reconfigure = step.overhead_s > 0.0;
            step.free_switch =
                prev != step.chosen && step.overhead_s == 0.0;
            prev = step.chosen;
            board_chain.push_back(step);
        }
        plan.board_plans[b] =
            planLookaheadWindow(board_chain, entry_resident[b], time_model);
        plan.paid_loads += plan.board_plans[b].paid_loads;
        plan.paid_reconfig_s += plan.board_plans[b].paid_reconfig_s;
        boards[b].resident = plan.board_plans[b].resident_after;
    }
    return plan;
}

void
emitFleetEvents(MetricsSink &sink, const FleetWindowPlan &plan,
                const std::vector<ReconfigDecision> &decisions,
                std::size_t base_index,
                const std::vector<BoardState> &boards_after)
{
    for (std::size_t i = 0; i < plan.routes.size(); ++i) {
        const RouteChoice &route = plan.routes[i];
        sink.event("fleet.route",
                   {{"job", std::uint64_t(base_index + i)},
                    {"design", designName(decisions[i].chosen)},
                    {"board", std::uint64_t(route.board)},
                    {"affine", std::uint64_t(route.affine ? 1 : 0)},
                    {"switch_s", route.switch_s}});
    }
    for (std::size_t b = 0; b < plan.board_jobs.size(); ++b) {
        if (plan.board_jobs[b].empty())
            continue;
        const WindowPlan &board_plan = plan.board_plans[b];
        sink.event("fleet.board",
                   {{"board", std::uint64_t(b)},
                    {"jobs", std::uint64_t(plan.board_jobs[b].size())},
                    {"groups", std::uint64_t(board_plan.groups.size())},
                    {"paid_loads", board_plan.paid_loads},
                    {"load_s", board_plan.paid_reconfig_s},
                    {"resident_after",
                     designName(board_plan.resident_after)},
                    {"ready_s", boards_after[b].ready_s}});
    }
}

double
waitPercentileSeconds(std::vector<double> waits, double pct)
{
    if (waits.empty())
        return 0.0;
    std::sort(waits.begin(), waits.end());
    if (waits.size() == 1)
        return waits.front();
    // Linear interpolation between closest ranks — deterministic and
    // libm-free.
    const double clamped = std::max(0.0, std::min(100.0, pct));
    const double pos = clamped / 100.0 * double(waits.size() - 1);
    const std::size_t lo = std::size_t(pos);
    const std::size_t hi = std::min(lo + 1, waits.size() - 1);
    const double frac = pos - double(lo);
    return waits[lo] + frac * (waits[hi] - waits[lo]);
}

FleetRouter::FleetRouter(MisamFramework &framework, FleetConfig config)
    : framework_(framework), config_(config)
{
    if (config_.boards == 0)
        fatal("FleetRouter: boards must be positive");
    if (config_.queue_capacity == 0)
        fatal("FleetRouter: queue_capacity must be positive");
    if (config_.window == 0)
        fatal("FleetRouter: window must be positive");
    if (config_.gather && config_.queue_capacity < config_.window)
        fatal("FleetRouter: gather mode requires queue_capacity >= "
              "window");
    if (!framework_.trained())
        fatal("FleetRouter: framework must be trained before serving");

    const DesignId initial = framework_.engine().currentDesign();
    board_states_.assign(config_.boards, BoardState{initial, 0.0});
    boards_.reserve(config_.boards);
    for (std::size_t b = 0; b < config_.boards; ++b) {
        auto board = std::make_unique<Board>();
        // Each board owns a real engine instance: its currentDesign()
        // is the board's physical resident bitstream, updated as its
        // batches execute. The *decision* chain stays global in the
        // shared framework — see the header's determinism contract.
        board->engine = std::make_unique<ReconfigEngine>(
            framework_.engine().latencyModel(),
            framework_.engine().config(), initial);
        board->totals.resident = initial;
        boards_.push_back(std::move(board));
    }
    for (std::size_t b = 0; b < config_.boards; ++b)
        boards_[b]->worker = std::thread([this, b] { boardLoop(b); });
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

FleetRouter::~FleetRouter()
{
    stop(true);
    dispatcher_.join();
    for (const std::unique_ptr<Board> &board : boards_)
        board->worker.join();
}

std::size_t
FleetRouter::submit(BatchJob job, double arrival_s)
{
    std::unique_lock<std::mutex> lock(mutex_);
    admit_cv_.wait(lock, [this] {
        return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_)
        fatal("FleetRouter::submit: fleet is shutting down");
    queue_.push_back(AdmittedJob{std::move(job), arrival_s});
    slots_.emplace_back();
    const std::size_t index = admitted_++;
    high_water_ = std::max(high_water_, queue_.size());
    if (metrics_) {
        metrics_->add("fleet.admitted");
        metrics_->set("fleet.queue_high_water",
                      static_cast<double>(high_water_));
    }
    lock.unlock();
    wake_cv_.notify_one();
    return index;
}

void
FleetRouter::stop(bool drain_queue)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (!stopping_) {
        stopping_ = true;
        abandon_ = !drain_queue;
        wake_cv_.notify_all();
        admit_cv_.notify_all();
        space_cv_.notify_all();
        board_cv_.notify_all();
    }
    // The fleet-wide shutdown contract: every admitted job settles as
    // completed or rejected before stop() returns.
    done_cv_.wait(lock, [this] { return allSettledLocked(); });
}

void
FleetRouter::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ++drain_waiters_;
    wake_cv_.notify_all();
    done_cv_.wait(lock, [this] { return allSettledLocked(); });
    --drain_waiters_;
}

BatchReport
FleetRouter::serveAll(std::vector<BatchJob> jobs)
{
    for (BatchJob &job : jobs)
        submit(std::move(job));
    drain();
    return report();
}

bool
FleetRouter::allSettledLocked() const
{
    return completed_ + rejected_.size() == admitted_;
}

BatchReport
FleetRouter::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    BatchReport report;
    for (const JobSlot &slot : slots_) {
        if (!slot.done)
            continue;
        const ExecutionReport &rep = slot.result;
        report.total_execute_s += rep.breakdown.execute_s;
        report.total_reconfig_s += rep.breakdown.reconfig_s;
        report.total_host_s += rep.breakdown.preprocess_s +
                               rep.breakdown.inference_s +
                               rep.breakdown.engine_s;
        if (rep.decision.reconfigure)
            ++report.reconfigurations;
        if (rep.decision.free_switch)
            ++report.free_switches;
        report.jobs.push_back(rep);
    }
    return report;
}

std::vector<FleetRouter::Placement>
FleetRouter::placements() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Placement> out;
    for (const JobSlot &slot : slots_)
        if (slot.done)
            out.push_back(slot.place);
    return out;
}

std::vector<FleetRouter::RejectedJob>
FleetRouter::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<RejectedJob> out = rejected_;
    std::sort(out.begin(), out.end(),
              [](const RejectedJob &a, const RejectedJob &b) {
                  return a.index < b.index;
              });
    return out;
}

std::size_t
FleetRouter::admitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return admitted_;
}

std::size_t
FleetRouter::completed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return completed_;
}

std::vector<FleetRouter::BoardTotals>
FleetRouter::boardTotals() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<BoardTotals> out;
    out.reserve(boards_.size());
    for (const std::unique_ptr<Board> &board : boards_)
        out.push_back(board->totals);
    return out;
}

double
FleetRouter::makespanSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double makespan = 0.0;
    for (const std::unique_ptr<Board> &board : boards_)
        makespan = std::max(makespan, board->totals.finish_s);
    return makespan;
}

std::size_t
FleetRouter::queueHighWater() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
}

void
FleetRouter::setMetrics(MetricsRegistry *metrics)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = metrics;
    if (metrics_)
        metrics_->set("fleet.boards",
                      static_cast<double>(config_.boards));
}

void
FleetRouter::setTraceSink(MetricsSink *sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trace_sink_ = sink;
}

void
FleetRouter::dispatchLoop()
{
    const ReconfigTimeModel &time_model =
        framework_.engine().config().time_model;
    // A board may queue up to two windows' worth of its per-window
    // routing share before the dispatcher blocks — enough to keep
    // boards busy, bounded enough for back-pressure to reach submit().
    const std::size_t board_queue_bound =
        std::max<std::size_t>(1, config_.board_capacity) * 2;

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_cv_.wait(lock, [this] {
            if (stopping_)
                return true;
            if (queue_.empty())
                return false;
            return !config_.gather || queue_.size() >= config_.window ||
                   drain_waiters_ > 0;
        });
        if (abandon_ && !queue_.empty()) {
            // stop(false): settle the unrouted tail as rejections.
            std::size_t tail = 0;
            while (!queue_.empty()) {
                rejected_.push_back({dispatched_++,
                                     std::move(queue_.front().job.name),
                                     kRouterRejected});
                queue_.pop_front();
                ++tail;
            }
            if (metrics_)
                metrics_->add("fleet.rejected", tail);
            boards_stopping_ = true;
            board_cv_.notify_all();
            done_cv_.notify_all();
            return;
        }
        if (queue_.empty()) {
            if (stopping_) {
                boards_stopping_ = true;
                board_cv_.notify_all();
                return;
            }
            continue;
        }

        // Pull one window in admission order; popping frees admission
        // capacity immediately.
        std::vector<AdmittedJob> window;
        const std::size_t n = std::min(config_.window, queue_.size());
        window.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            window.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        const std::size_t base = dispatched_;
        dispatched_ += n;
        MetricsRegistry *metrics = metrics_;
        MetricsSink *sink = trace_sink_;
        lock.unlock();
        admit_cv_.notify_all();
        if (metrics)
            metrics->add("fleet.windows");

        // Stage 1 — parallel: per-job feature extraction.
        std::vector<ExecutionReport> reports(n);
        for (std::size_t i = 0; i < n; ++i)
            reports[i].name = window[i].job.name;
        parallelFor(
            n,
            [&](std::size_t i) {
                framework_.extractJobFeatures(reports[i], window[i].job.a,
                                              window[i].job.b);
            },
            config_.threads);

        // Stage 2 — serial, admission order: the *global* decision
        // chain. Job i's decision depends only on jobs 0..i-1, never on
        // placement, which is what makes per-job results bit-identical
        // across routing policies and board counts.
        std::vector<ReconfigDecision> decisions(n);
        std::vector<double> est_latency_s(n);
        std::vector<double> arrival_s(n);
        for (std::size_t i = 0; i < n; ++i) {
            framework_.decideJob(reports[i], window[i].job.repetitions);
            decisions[i] = reports[i].decision;
            est_latency_s[i] =
                framework_.engine().predictLatencySeconds(
                    reports[i].features, decisions[i].chosen) *
                window[i].job.repetitions;
            arrival_s[i] = window[i].arrival_s;
        }

        // Stage 3 — deterministic routing over logical board state.
        FleetWindowPlan plan = planFleetWindow(
            decisions, est_latency_s, arrival_s, config_.route,
            time_model, config_.board_capacity, board_states_);
        if (sink)
            emitFleetEvents(*sink, plan, decisions, base, board_states_);
        if (metrics) {
            metrics->add("fleet.routed_affine", plan.affine_routed);
            metrics->add("fleet.routed_fallback", plan.fallback_routed);
        }

        // Stage 4 — hand each board its slice, in board order, with
        // bounded board queues providing back-pressure.
        lock.lock();
        for (std::size_t b = 0; b < boards_.size(); ++b) {
            if (plan.board_jobs[b].empty())
                continue;
            BoardBatch batch;
            const std::size_t count = plan.board_jobs[b].size();
            batch.indices.reserve(count);
            batch.jobs.reserve(count);
            batch.partial.reserve(count);
            batch.arrivals.reserve(count);
            for (const std::size_t j : plan.board_jobs[b]) {
                batch.indices.push_back(base + j);
                batch.jobs.push_back(std::move(window[j].job));
                batch.partial.push_back(std::move(reports[j]));
                batch.arrivals.push_back(arrival_s[j]);
                JobSlot &slot = slots_[base + j];
                slot.place.board = b;
                slot.place.affine = plan.routes[j].affine;
                slot.place.arrival_s = arrival_s[j];
            }
            batch.plan = std::move(plan.board_plans[b]);
            batch.free_moves = plan.board_free_moves[b];
            boards_[b]->totals.routed += count;
            space_cv_.wait(lock, [&] {
                return abandon_ ||
                       boards_[b]->queued_jobs + count <=
                           board_queue_bound ||
                       count > board_queue_bound;
            });
            boards_[b]->queued_jobs += count;
            boards_[b]->batches.push_back(std::move(batch));
        }
        board_cv_.notify_all();
    }
}

void
FleetRouter::boardLoop(std::size_t board_id)
{
    Board &board = *boards_[board_id];
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        board_cv_.wait(lock, [&] {
            return boards_stopping_ || !board.batches.empty();
        });
        if (!board.batches.empty()) {
            BoardBatch batch = std::move(board.batches.front());
            board.batches.pop_front();
            board.queued_jobs -= batch.jobs.size();
            space_cv_.notify_all();
            if (abandon_) {
                // stop(false): a batch not yet started is rejected
                // whole; only an in-flight batch runs to completion.
                for (std::size_t k = 0; k < batch.jobs.size(); ++k)
                    rejected_.push_back({batch.indices[k],
                                         std::move(batch.jobs[k].name),
                                         board_id});
                board.totals.rejected += batch.jobs.size();
                if (metrics_)
                    metrics_->add("fleet.rejected", batch.jobs.size());
                done_cv_.notify_all();
                continue;
            }
            runBoardBatch(board_id, std::move(batch), lock);
            continue;
        }
        if (boards_stopping_)
            return;
    }
}

void
FleetRouter::runBoardBatch(std::size_t board_id, BoardBatch batch,
                           std::unique_lock<std::mutex> &lock)
{
    Board &board = *boards_[board_id];
    const ReconfigTimeModel &time_model =
        framework_.engine().config().time_model;
    MetricsRegistry *metrics = metrics_;
    lock.unlock();

    // Simulate in planned group order; the board's logical clock pays
    // each group's bitstream load up front, then jobs run back to back
    // (a job that arrives after the board frees up starts at its
    // arrival instead). simulateJob is thread-safe: the decision chain
    // already ran, so boards execute concurrently.
    const std::size_t count = batch.jobs.size();
    std::vector<double> group_execute_s(batch.plan.groups.size(), 0.0);
    std::vector<double> start_s(count, 0.0);
    std::vector<double> finish_s(count, 0.0);
    double clock_s = board.clock_s;
    double busy_s = 0.0;
    for (std::size_t g = 0; g < batch.plan.groups.size(); ++g) {
        clock_s += batch.plan.groups[g].load_seconds;
        for (const std::size_t j : batch.plan.groups[g].jobs) {
            framework_.simulateJob(batch.partial[j], batch.jobs[j].a,
                                   batch.jobs[j].b,
                                   batch.jobs[j].repetitions);
            const double execute_s = batch.partial[j].breakdown.execute_s;
            group_execute_s[g] += execute_s;
            start_s[j] = std::max(batch.arrivals[j], clock_s);
            clock_s = start_s[j] + execute_s;
            finish_s[j] = clock_s;
            busy_s += execute_s;
        }
    }
    const WindowAccounting acct = accountLookaheadWindow(
        batch.plan, group_execute_s, time_model, false);
    board.clock_s = clock_s;
    board.engine->setCurrentDesign(batch.plan.resident_after);

    lock.lock();
    for (std::size_t j = 0; j < count; ++j) {
        JobSlot &slot = slots_[batch.indices[j]];
        if (slot.done)
            panic("FleetRouter: job ", batch.indices[j],
                  " settled twice");
        slot.done = true;
        slot.result = std::move(batch.partial[j]);
        slot.place.start_s = start_s[j];
        slot.place.wait_s = start_s[j] - batch.arrivals[j];
        slot.place.finish_s = finish_s[j];
    }
    completed_ += count;
    board.totals.completed += count;
    board.totals.paid_loads += batch.plan.paid_loads;
    board.totals.free_moves += batch.free_moves;
    board.totals.paid_reconfig_s += batch.plan.paid_reconfig_s;
    board.totals.busy_s += busy_s;
    board.totals.finish_s = clock_s;
    board.totals.resident = batch.plan.resident_after;
    board.totals.stats.accumulate(batch.plan, acct);
    if (metrics) {
        metrics->add("fleet.completed", count);
        metrics->add("fleet.paid_loads",
                     static_cast<std::uint64_t>(batch.plan.paid_loads));
        if (batch.free_moves > 0)
            metrics->add("fleet.free_moves",
                         static_cast<std::uint64_t>(batch.free_moves));
    }
    done_cv_.notify_all();
}

} // namespace misam
