/**
 * @file
 * JSONL job files for the `misam serve` CLI subcommand.
 *
 * One job per line, a flat JSON object:
 *
 *     {"name":"layer3","a":"act3.mtx","b":"weights.mtx","repetitions":32}
 *     {"name":"graph","a":"web.mtx"}
 *     {"name":"spmm","a":"m.mtx","dense_cols":256}
 *
 * Fields:
 *   a           (required) Matrix Market path of the A operand.
 *   b           Path of B, or the literal "self" (default: self —
 *               requires square A).
 *   dense_cols  Generate a dense B with this many columns instead
 *               (mutually exclusive with b; same convention as the
 *               CLI's --dense-cols flag, seed 1).
 *   name        Job label (default: "job<line>").
 *   repetitions Executions the job stands for (default 1).
 *
 * Blank lines and lines starting with '#' are skipped; unknown keys
 * warn and are ignored (forward compatibility); malformed JSON is a
 * fatal error naming the line.
 */

#ifndef MISAM_SERVE_JOBFILE_HH
#define MISAM_SERVE_JOBFILE_HH

#include <string>
#include <vector>

#include "core/misam.hh"

namespace misam {

/** One parsed (not yet loaded) job line. */
struct ServeJobSpec
{
    std::string name;
    std::string a_path;
    std::string b_path;    ///< Empty: self (or dense_cols if set).
    Index dense_cols = 0;  ///< > 0: generate a dense B operand.
    double repetitions = 1.0;
};

/** Parse a JSONL job file; fatal on malformed lines. */
std::vector<ServeJobSpec> parseJobFile(const std::string &path);

/** Load one spec's matrices into an executable job. */
BatchJob loadServeJob(const ServeJobSpec &spec);

/** parseJobFile + loadServeJob over every line. */
std::vector<BatchJob> loadJobFile(const std::string &path);

} // namespace misam

#endif // MISAM_SERVE_JOBFILE_HH
