/**
 * @file
 * Lookahead reconfiguration scheduling (ROADMAP item 2; paper §6.1).
 *
 * The reconfiguration engine decides per job, so an interleaved stream
 * of jobs whose predicted-best designs alternate pays a bitstream load
 * at every flip — the paper's 3-4 s full-reconfiguration cost, per
 * flip. A serving queue, however, holds a *window* of admitted jobs
 * whose decisions are already known before anything executes. The
 * lookahead planner exploits that: it groups the window's jobs by the
 * design the engine chose for them and executes the groups
 * back-to-back, so one physical bitstream load amortizes over the whole
 * run of same-design jobs. With prewarm enabled (partial-reconfig mode
 * only), loading the *next* group's design overlaps the current group's
 * execution — double-buffered dynamic regions, per the §6.1 model in
 * reconfig/bitstream.hh.
 *
 * Ordering contract (SchedulePolicy):
 *  - `AdmissionOrder` — jobs execute in admission order; physical
 *    reconfigurations equal the engine chain's `reconfigure` verdicts.
 *  - `Lookahead` — execution order within a window is a permutation of
 *    admission order (same-design runs made contiguous). Per-job
 *    results stay **bit-identical** to the admission-order serial path,
 *    because the engine's decision chain is always evaluated in
 *    admission order during planning; only *when* a job's simulation
 *    runs — and how many physical loads the window pays — changes.
 *    Reports are merged back in admission order regardless of execution
 *    order (pinned by tests/test_lookahead.cpp).
 *
 * All planner inputs and outputs are modeled quantities (time-model
 * seconds, simulated execute seconds), so plans and their accounting
 * are deterministic for any `MISAM_THREADS` and can live in golden
 * traces (tests/golden/sched_lookahead.jsonl).
 */

#ifndef MISAM_SERVE_LOOKAHEAD_HH
#define MISAM_SERVE_LOOKAHEAD_HH

#include <cstddef>
#include <vector>

#include "reconfig/bitstream.hh"
#include "reconfig/engine.hh"

namespace misam {

class MetricsSink;

/** How the serving dispatcher orders execution within a window. */
enum class SchedulePolicy
{
    AdmissionOrder, ///< Execute in admission order (per-job engine).
    Lookahead,      ///< Batch + reorder + coalesce per window.
};

/** Display name ("admission", "lookahead"). */
const char *schedulePolicyName(SchedulePolicy policy);

/** One contiguous run of same-design jobs in a window plan. */
struct LookaheadGroup
{
    DesignId design = DesignId::D1; ///< Design every job here runs on.
    std::vector<std::size_t> jobs;  ///< Window-relative job indices, in
                                    ///< admission order within the group.
    bool loads_bitstream = false;   ///< A physical load precedes the group.
    double load_seconds = 0.0;      ///< Cost of that load (0 when free).
};

/** A window's planned execution schedule. */
struct WindowPlan
{
    std::vector<LookaheadGroup> groups;
    /** Flattened execution order: window-relative job indices. Always
     *  an exact permutation of [0, jobs). */
    std::vector<std::size_t> order;
    /** Jobs whose execution position differs from admission position. */
    std::size_t reordered_jobs = 0;
    /** Bitstream loads the admission-order chain would pay
     *  (`decision.reconfigure` verdicts). */
    int planned_reconfigs = 0;
    /** Physical loads the grouped schedule pays. */
    int paid_loads = 0;
    /** Seconds of the admission-order chain's paid switches. */
    double planned_reconfig_s = 0.0;
    /** Seconds of the grouped schedule's physical loads. */
    double paid_reconfig_s = 0.0;
    /** Design resident on the fabric after the window executes. */
    DesignId resident_after = DesignId::D1;
};

/** Post-execution accounting of one planned window. */
struct WindowAccounting
{
    double execute_s = 0.0;           ///< Simulated execute seconds.
    double overlapped_reconfig_s = 0.0; ///< Load seconds hidden under
                                        ///< execution by prewarm.
    double exposed_reconfig_s = 0.0;  ///< Residual stall seconds:
                                      ///< paid - overlapped.
    int prewarm_loads = 0;            ///< Loads issued as prewarms.
};

/** Accumulated scheduler statistics across windows. */
struct ScheduleStats
{
    std::size_t windows = 0;
    std::size_t jobs = 0;
    std::size_t groups = 0;
    std::size_t reordered_jobs = 0;
    int planned_reconfigs = 0;
    int paid_loads = 0;
    int prewarm_loads = 0;
    double planned_reconfig_s = 0.0;
    double paid_reconfig_s = 0.0;
    double overlapped_reconfig_s = 0.0;
    double exposed_reconfig_s = 0.0;
    double execute_s = 0.0;

    /** Chain reconfigurations the grouped schedule avoided. */
    int
    coalesced() const
    {
        return planned_reconfigs - paid_loads;
    }

    /**
     * Modeled time the schedule occupies the FPGA: execution plus the
     * reconfiguration seconds prewarm could not hide. (Host-side
     * feature/inference time is accounted separately in BatchReport.)
     */
    double
    makespanSeconds() const
    {
        return execute_s + exposed_reconfig_s;
    }

    void accumulate(const WindowPlan &plan, const WindowAccounting &acct);
};

/**
 * Plan one window: group the jobs by their (admission-order) chain
 * decision's chosen design, order the groups to start with the
 * resident bitstream when possible (then by first admission index), and
 * price the physical load at each group boundary with `time_model`.
 *
 * `decisions[i]` must be the engine verdict for window job `i`,
 * produced by the admission-order decision chain; `resident` is the
 * design physically loaded before the window starts (which can differ
 * from the chain's current design once windows reorder). Deterministic:
 * the plan is a pure function of its arguments.
 */
WindowPlan planLookaheadWindow(const std::vector<ReconfigDecision> &decisions,
                               DesignId resident,
                               const ReconfigTimeModel &time_model);

/**
 * Account a planned window after execution. `group_execute_s[g]` is
 * the summed simulated execute seconds (sim.exec_seconds x repetitions)
 * of the jobs in plan.groups[g]. With `prewarm` true and the time model
 * in Partial mode (double-buffered dynamic regions), the load of group
 * g overlaps the execution of group g-1 up to the shorter of the two;
 * the first group's load, and every load in Full/CGRA mode, is fully
 * exposed.
 */
WindowAccounting accountLookaheadWindow(
    const WindowPlan &plan, const std::vector<double> &group_execute_s,
    const ReconfigTimeModel &time_model, bool prewarm);

/**
 * Emit one `sched.window` event per plan plus a `sched.group` event per
 * group (docs/OBSERVABILITY.md schema). Deterministic bytes for
 * deterministic inputs — pinned by the golden-trace suite.
 */
void emitScheduleEvents(MetricsSink &sink, const WindowPlan &plan,
                        const WindowAccounting &acct);

} // namespace misam

#endif // MISAM_SERVE_LOOKAHEAD_HH
