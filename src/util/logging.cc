#include "util/logging.hh"

#include <atomic>
#include <cstdio>

namespace misam {

namespace {

std::atomic<bool> verbose_enabled{false};

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Fatal:
        return "fatal";
      case LogLevel::Panic:
        return "panic";
    }
    return "?";
}

} // namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", levelTag(level), msg.c_str());
}

bool
verboseLogging()
{
    return verbose_enabled;
}

void
setVerboseLogging(bool enabled)
{
    verbose_enabled = enabled;
}

} // namespace misam
