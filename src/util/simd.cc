#include "util/simd.hh"

#include <atomic>
#include <bit>
#include <cmath>
#include <string>

#include "util/env.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace misam::simd {

namespace {

// ---------------------------------------------------------------------
// Backend selection.
// ---------------------------------------------------------------------

/** -1 until first resolution; a Backend ordinal afterwards. */
std::atomic<int> g_backend{-1};

Backend
resolveFromEnv()
{
    const std::string requested = envString("MISAM_SIMD");
    if (requested.empty())
        return bestSupportedBackend();
    Backend backend = Backend::Scalar;
    if (requested == "scalar")
        backend = Backend::Scalar;
    else if (requested == "avx2")
        backend = Backend::Avx2;
    else if (requested == "neon")
        backend = Backend::Neon;
    else if (requested == "avx512")
        backend = Backend::Avx512;
    else
        fatal("MISAM_SIMD: unknown backend '", requested,
              "' (expected scalar|avx2|neon|avx512)");
    if (!backendSupported(backend))
        fatal("MISAM_SIMD: backend '", requested,
              "' is not executable on this host");
    return backend;
}

// ---------------------------------------------------------------------
// Observability: process-wide totals plus resolve-at-attach mirrors
// (the setSimKernelMetrics pattern from sim/workspace.cc).
// ---------------------------------------------------------------------

std::atomic<std::uint64_t> g_bitmap_rows{0};
std::atomic<std::uint64_t> g_fingerprint_blocks{0};
std::atomic<std::uint64_t> g_weight_builds{0};
std::atomic<std::uint64_t> g_pe_folds{0};
std::atomic<std::uint64_t> g_csc_blocked{0};
std::atomic<std::uint64_t> g_expand_rows{0};

std::atomic<Counter *> g_mirror_bitmap_rows{nullptr};
std::atomic<Counter *> g_mirror_fingerprint_blocks{nullptr};
std::atomic<Counter *> g_mirror_weight_builds{nullptr};
std::atomic<Counter *> g_mirror_pe_folds{nullptr};
std::atomic<Counter *> g_mirror_csc_blocked{nullptr};
std::atomic<Counter *> g_mirror_expand_rows{nullptr};
std::atomic<Gauge *> g_mirror_backend{nullptr};

void
bumpBy(std::atomic<std::uint64_t> &total, std::atomic<Counter *> &mirror,
       std::uint64_t n)
{
    total.fetch_add(n, std::memory_order_relaxed);
    if (Counter *c = mirror.load(std::memory_order_relaxed))
        c->add(n);
}

void
publishBackendGauge()
{
    if (Gauge *g = g_mirror_backend.load(std::memory_order_relaxed))
        g->set(static_cast<double>(static_cast<int>(activeBackend())));
}

// ---------------------------------------------------------------------
// Scalar reference kernels. Every vector variant must match these
// byte-for-byte (tests/test_simd_dispatch.cpp).
// ---------------------------------------------------------------------
// misam-lint: hot-path begin -- kernel bodies run per 64-bit word of every bitmask/fingerprint pass; any allocation here multiplies by nnz

void
orIntoScalar(std::uint64_t *acc, const std::uint64_t *src,
             std::size_t words)
{
    for (std::size_t i = 0; i < words; ++i)
        acc[i] |= src[i];
}

std::uint64_t
popcountAndClearScalar(std::uint64_t *words, std::size_t n)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(words[i]));
        words[i] = 0;
    }
    return total;
}

std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

// The fingerprint bulk-round constants (sparse/fingerprint.cc keeps the
// canonical scalar loop; these variants must agree with it exactly).
constexpr std::uint64_t kFpMul1 = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kFpMul2 = 0xc2b2ae3d27d4eb4fULL;

std::uint64_t
fingerprintRound(std::uint64_t lane, std::uint64_t word)
{
    return rotl64(lane ^ (word * kFpMul1), 31) * kFpMul2;
}

std::size_t
fingerprintBulkScalar(std::uint64_t lanes[4], const std::uint64_t *words,
                      std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        lanes[0] = fingerprintRound(lanes[0], words[i]);
        lanes[1] = fingerprintRound(lanes[1], words[i + 1]);
        lanes[2] = fingerprintRound(lanes[2], words[i + 2]);
        lanes[3] = fingerprintRound(lanes[3], words[i + 3]);
    }
    return i;
}

void
packPairsU32Scalar(std::uint64_t *dst, const std::uint32_t *src,
                   std::size_t pairs)
{
    for (std::size_t i = 0; i < pairs; ++i)
        dst[i] = static_cast<std::uint64_t>(src[2 * i]) |
                 (static_cast<std::uint64_t>(src[2 * i + 1]) << 32);
}

void
ceilDivWeightsScalar(std::uint64_t *dst, const std::uint64_t *row_nnz,
                     std::size_t n, double eff_lanes, std::uint64_t meta)
{
    for (std::size_t i = 0; i < n; ++i) {
        const auto gather = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(row_nnz[i]) / eff_lanes));
        dst[i] = meta + gather;
    }
}

std::uint64_t
peLengthScalar(const std::uint64_t *rec, std::uint64_t dep)
{
    const std::uint64_t total_work = rec[1];
    const std::uint64_t max_row_count = rec[2];
    const std::uint64_t rows_at_max = rec[3];
    if (total_work == 0)
        return 0;
    const std::uint64_t cooldown =
        max_row_count > 0 ? (max_row_count - 1) * dep + rows_at_max : 0;
    return total_work > cooldown ? total_work : cooldown;
}

PeFold
peScheduleFoldScalar(const std::uint64_t *acc4, std::size_t n,
                     std::uint64_t dep)
{
    PeFold fold;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t *rec = acc4 + 4 * i;
        const std::uint64_t len = peLengthScalar(rec, dep);
        if (len > fold.schedule_length)
            fold.schedule_length = len;
        fold.total_elements += rec[0];
        fold.busy_cycles += rec[1];
    }
    return fold;
}

std::size_t
expandSetBitsScalar(std::uint64_t *words, std::size_t n,
                    std::uint32_t base, std::uint32_t *dst)
{
    std::size_t out = 0;
    for (std::size_t w = 0; w < n; ++w) {
        std::uint64_t bits = words[w];
        const std::uint32_t word_base =
            base + static_cast<std::uint32_t>(w) * 64u;
        while (bits != 0) {
            dst[out++] = word_base + static_cast<std::uint32_t>(
                                         std::countr_zero(bits));
            bits &= bits - 1;
        }
        words[w] = 0;
    }
    return out;
}

// ---------------------------------------------------------------------
// AVX2 kernels (x86-64, selected at runtime via cpuid).
// ---------------------------------------------------------------------

#if defined(__x86_64__)

#define MISAM_AVX2 __attribute__((target("avx2")))

MISAM_AVX2 void
orIntoAvx2(std::uint64_t *acc, const std::uint64_t *src,
           std::size_t words)
{
    std::size_t i = 0;
    for (; i + 4 <= words; i += 4) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + i),
                            _mm256_or_si256(a, b));
    }
    for (; i < words; ++i)
        acc[i] |= src[i];
}

MISAM_AVX2 std::uint64_t
popcountAndClearAvx2(std::uint64_t *words, std::size_t n)
{
    // Mula's nibble-table popcount: per byte, two pshufb lookups summed
    // into 64-bit buckets via sad_epu8.
    const __m256i lookup = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i lo = _mm256_and_si256(v, low_mask);
        const __m256i hi =
            _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
        const __m256i cnt =
            _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                            _mm256_shuffle_epi8(lookup, hi));
        acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(words + i),
                            zero);
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), acc);
    std::uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(words[i]));
        words[i] = 0;
    }
    return total;
}

/** Full 64x64->low-64 multiply by a broadcast constant. */
MISAM_AVX2 __m256i
mul64Avx2(__m256i a, __m256i b)
{
    const __m256i lo = _mm256_mul_epu32(a, b);
    const __m256i hi1 =
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
    const __m256i hi2 =
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
    return _mm256_add_epi64(
        lo, _mm256_slli_epi64(_mm256_add_epi64(hi1, hi2), 32));
}

MISAM_AVX2 __m256i
rotl64Avx2(__m256i x, int r)
{
    return _mm256_or_si256(_mm256_slli_epi64(x, r),
                           _mm256_srli_epi64(x, 64 - r));
}

MISAM_AVX2 std::size_t
fingerprintBulkAvx2(std::uint64_t lanes[4], const std::uint64_t *words,
                    std::size_t n)
{
    const __m256i c1 = _mm256_set1_epi64x(
        static_cast<long long>(kFpMul1));
    const __m256i c2 = _mm256_set1_epi64x(
        static_cast<long long>(kFpMul2));
    __m256i state = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(lanes));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i mixed =
            _mm256_xor_si256(state, mul64Avx2(w, c1));
        state = mul64Avx2(rotl64Avx2(mixed, 31), c2);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), state);
    return i;
}

MISAM_AVX2 void
packPairsU32Avx2(std::uint64_t *dst, const std::uint32_t *src,
                 std::size_t pairs)
{
    // Little-endian x86: a (lo, hi) u32 pair in memory is exactly the
    // packed u64, so wide copies reproduce the scalar shift/or loop.
    std::size_t i = 0;
    for (; i + 4 <= pairs; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + 2 * i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), v);
    }
    packPairsU32Scalar(dst + i, src + 2 * i, pairs - i);
}

// f64 <-> u64 conversion for values below 2^52: or/subtract against the
// 2^52 exponent pattern keeps the integer in the mantissa bits exactly.
constexpr long long kExp52 = 0x4330000000000000LL; // (double)2^52 bits.

MISAM_AVX2 __m256d
u64ToF64Avx2(__m256i v)
{
    const __m256i shifted =
        _mm256_or_si256(v, _mm256_set1_epi64x(kExp52));
    return _mm256_sub_pd(_mm256_castsi256_pd(shifted),
                         _mm256_set1_pd(4503599627370496.0));
}

MISAM_AVX2 __m256i
f64ToU64Avx2(__m256d d)
{
    const __m256d shifted =
        _mm256_add_pd(d, _mm256_set1_pd(4503599627370496.0));
    return _mm256_sub_epi64(_mm256_castpd_si256(shifted),
                            _mm256_set1_epi64x(kExp52));
}

MISAM_AVX2 void
ceilDivWeightsAvx2(std::uint64_t *dst, const std::uint64_t *row_nnz,
                   std::size_t n, double eff_lanes, std::uint64_t meta)
{
    const __m256d lanes_v = _mm256_set1_pd(eff_lanes);
    const __m256i meta_v =
        _mm256_set1_epi64x(static_cast<long long>(meta));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i nnz = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(row_nnz + i));
        const __m256d q =
            _mm256_div_pd(u64ToF64Avx2(nnz), lanes_v);
        const __m256d c = _mm256_round_pd(
            q, _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_add_epi64(f64ToU64Avx2(c), meta_v));
    }
    ceilDivWeightsScalar(dst + i, row_nnz + i, n - i, eff_lanes, meta);
}

MISAM_AVX2 __m256i
maxU64Avx2(__m256i a, __m256i b)
{
    // Values stay far below 2^63, so the signed compare is exact.
    const __m256i gt = _mm256_cmpgt_epi64(b, a);
    return _mm256_blendv_epi8(a, b, gt);
}

MISAM_AVX2 PeFold
peScheduleFoldAvx2(const std::uint64_t *acc4, std::size_t n,
                   std::uint64_t dep)
{
    const __m256i dep_v =
        _mm256_set1_epi64x(static_cast<long long>(dep));
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i zero = _mm256_setzero_si256();
    __m256i len_acc = zero;
    __m256i te_acc = zero;
    __m256i tw_acc = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const std::uint64_t *base = acc4 + 4 * i;
        const __m256i r0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base));
        const __m256i r1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base + 4));
        const __m256i r2 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base + 8));
        const __m256i r3 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base + 12));
        // 4x4 u64 transpose: four records -> one vector per field.
        const __m256i t0 = _mm256_unpacklo_epi64(r0, r1);
        const __m256i t1 = _mm256_unpackhi_epi64(r0, r1);
        const __m256i t2 = _mm256_unpacklo_epi64(r2, r3);
        const __m256i t3 = _mm256_unpackhi_epi64(r2, r3);
        const __m256i te = _mm256_permute2x128_si256(t0, t2, 0x20);
        const __m256i tw = _mm256_permute2x128_si256(t1, t3, 0x20);
        const __m256i mc = _mm256_permute2x128_si256(t0, t2, 0x31);
        const __m256i ram = _mm256_permute2x128_si256(t1, t3, 0x31);
        // cooldown = (mc - 1) * dep + ram, forced to 0 when mc == 0
        // (mc and dep fit 32 bits, so mul_epu32 is the full product).
        const __m256i cooldown_raw = _mm256_add_epi64(
            _mm256_mul_epu32(_mm256_sub_epi64(mc, one), dep_v), ram);
        const __m256i mc_zero = _mm256_cmpeq_epi64(mc, zero);
        const __m256i cooldown =
            _mm256_andnot_si256(mc_zero, cooldown_raw);
        __m256i len = maxU64Avx2(tw, cooldown);
        len = _mm256_andnot_si256(_mm256_cmpeq_epi64(tw, zero), len);
        len_acc = maxU64Avx2(len_acc, len);
        te_acc = _mm256_add_epi64(te_acc, te);
        tw_acc = _mm256_add_epi64(tw_acc, tw);
    }
    alignas(32) std::uint64_t len_l[4];
    alignas(32) std::uint64_t te_l[4];
    alignas(32) std::uint64_t tw_l[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(len_l), len_acc);
    _mm256_store_si256(reinterpret_cast<__m256i *>(te_l), te_acc);
    _mm256_store_si256(reinterpret_cast<__m256i *>(tw_l), tw_acc);
    PeFold fold;
    for (int lane = 0; lane < 4; ++lane) {
        if (len_l[lane] > fold.schedule_length)
            fold.schedule_length = len_l[lane];
        fold.total_elements += te_l[lane];
        fold.busy_cycles += tw_l[lane];
    }
    const PeFold tail = peScheduleFoldScalar(acc4 + 4 * i, n - i, dep);
    if (tail.schedule_length > fold.schedule_length)
        fold.schedule_length = tail.schedule_length;
    fold.total_elements += tail.total_elements;
    fold.busy_cycles += tail.busy_cycles;
    return fold;
}

#undef MISAM_AVX2

// ---------------------------------------------------------------------
// AVX-512 kernels (x86-64, runtime-probed for F+BW+DQ+VL). The host we
// target has no VPOPCNTDQ, so popcount stays on Mula's shuffle method,
// just at 512-bit width; DQ's vpmullq replaces AVX2's three-multiply
// 64-bit product in the fingerprint rounds and the schedule fold.
// ---------------------------------------------------------------------

#define MISAM_AVX512                                                   \
    __attribute__((target("avx512f,avx512bw,avx512dq,avx512vl")))

MISAM_AVX512 void
orIntoAvx512(std::uint64_t *acc, const std::uint64_t *src,
             std::size_t words)
{
    std::size_t i = 0;
    for (; i + 8 <= words; i += 8) {
        const __m512i a = _mm512_loadu_si512(acc + i);
        const __m512i b = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(acc + i, _mm512_or_si512(a, b));
    }
    for (; i < words; ++i)
        acc[i] |= src[i];
}

MISAM_AVX512 std::uint64_t
popcountAndClearAvx512(std::uint64_t *words, std::size_t n)
{
    const __m512i lookup = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i low_mask = _mm512_set1_epi8(0x0f);
    const __m512i zero = _mm512_setzero_si512();
    __m512i acc = zero;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_loadu_si512(words + i);
        const __m512i lo = _mm512_and_si512(v, low_mask);
        const __m512i hi =
            _mm512_and_si512(_mm512_srli_epi32(v, 4), low_mask);
        const __m512i cnt =
            _mm512_add_epi8(_mm512_shuffle_epi8(lookup, lo),
                            _mm512_shuffle_epi8(lookup, hi));
        acc = _mm512_add_epi64(acc, _mm512_sad_epu8(cnt, zero));
        _mm512_storeu_si512(words + i, zero);
    }
    std::uint64_t total =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
    for (; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(words[i]));
        words[i] = 0;
    }
    return total;
}

MISAM_AVX512 std::size_t
fingerprintBulkAvx512(std::uint64_t lanes[4],
                      const std::uint64_t *words, std::size_t n)
{
    const __m256i c1 =
        _mm256_set1_epi64x(static_cast<long long>(kFpMul1));
    const __m256i c2 =
        _mm256_set1_epi64x(static_cast<long long>(kFpMul2));
    __m256i state = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(lanes));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(words + i));
        const __m256i mixed =
            _mm256_xor_si256(state, _mm256_mullo_epi64(w, c1));
        state = _mm256_mullo_epi64(_mm256_rol_epi64(mixed, 31), c2);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), state);
    return i;
}

MISAM_AVX512 void
packPairsU32Avx512(std::uint64_t *dst, const std::uint32_t *src,
                   std::size_t pairs)
{
    std::size_t i = 0;
    for (; i + 8 <= pairs; i += 8)
        _mm512_storeu_si512(dst + i, _mm512_loadu_si512(src + 2 * i));
    packPairsU32Scalar(dst + i, src + 2 * i, pairs - i);
}

MISAM_AVX512 void
ceilDivWeightsAvx512(std::uint64_t *dst, const std::uint64_t *row_nnz,
                     std::size_t n, double eff_lanes,
                     std::uint64_t meta)
{
    // DQ's direct u64<->f64 conversions round/truncate exactly like the
    // scalar casts, so no 2^52 trick is needed here.
    const __m512d lanes_v = _mm512_set1_pd(eff_lanes);
    const __m512i meta_v =
        _mm512_set1_epi64(static_cast<long long>(meta));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i nnz = _mm512_loadu_si512(row_nnz + i);
        const __m512d q =
            _mm512_div_pd(_mm512_cvtepu64_pd(nnz), lanes_v);
        const __m512d c = _mm512_roundscale_pd(
            q, _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC);
        _mm512_storeu_si512(
            dst + i,
            _mm512_add_epi64(_mm512_cvttpd_epu64(c), meta_v));
    }
    ceilDivWeightsScalar(dst + i, row_nnz + i, n - i, eff_lanes, meta);
}

MISAM_AVX512 PeFold
peScheduleFoldAvx512(const std::uint64_t *acc4, std::size_t n,
                     std::uint64_t dep)
{
    const __m512i dep_v =
        _mm512_set1_epi64(static_cast<long long>(dep));
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i zero = _mm512_setzero_si512();
    const __m512i lo_half = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
    __m512i len_acc = zero;
    __m512i te_acc = zero;
    __m512i tw_acc = zero;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const std::uint64_t *base = acc4 + 4 * i;
        const __m512i z0 = _mm512_loadu_si512(base);
        const __m512i z1 = _mm512_loadu_si512(base + 8);
        const __m512i z2 = _mm512_loadu_si512(base + 16);
        const __m512i z3 = _mm512_loadu_si512(base + 24);
        // 8x4 u64 transpose via two-source permutes: per field f, lanes
        // {f, f+4} of each record pair, then splice the four-record
        // halves together.
        __m512i field[4];
        for (int f = 0; f < 4; ++f) {
            const __m512i idx = _mm512_setr_epi64(f, f + 4, f + 8,
                                                  f + 12, f, f + 4,
                                                  f + 8, f + 12);
            const __m512i a = _mm512_permutex2var_epi64(z0, idx, z1);
            const __m512i b = _mm512_permutex2var_epi64(z2, idx, z3);
            field[f] = _mm512_permutex2var_epi64(a, lo_half, b);
        }
        const __m512i te = field[0];
        const __m512i tw = field[1];
        const __m512i mc = field[2];
        const __m512i ram = field[3];
        const __m512i cooldown_raw = _mm512_add_epi64(
            _mm512_mullo_epi64(_mm512_sub_epi64(mc, one), dep_v), ram);
        const __mmask8 mc_nz = _mm512_test_epi64_mask(mc, mc);
        const __m512i cooldown =
            _mm512_maskz_mov_epi64(mc_nz, cooldown_raw);
        const __mmask8 tw_nz = _mm512_test_epi64_mask(tw, tw);
        const __m512i len = _mm512_maskz_mov_epi64(
            tw_nz, _mm512_max_epu64(tw, cooldown));
        len_acc = _mm512_max_epu64(len_acc, len);
        te_acc = _mm512_add_epi64(te_acc, te);
        tw_acc = _mm512_add_epi64(tw_acc, tw);
    }
    PeFold fold;
    fold.schedule_length = _mm512_reduce_max_epu64(len_acc);
    fold.total_elements =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(te_acc));
    fold.busy_cycles =
        static_cast<std::uint64_t>(_mm512_reduce_add_epi64(tw_acc));
    const PeFold tail = peScheduleFoldScalar(acc4 + 4 * i, n - i, dep);
    if (tail.schedule_length > fold.schedule_length)
        fold.schedule_length = tail.schedule_length;
    fold.total_elements += tail.total_elements;
    fold.busy_cycles += tail.busy_cycles;
    return fold;
}

MISAM_AVX512 std::size_t
expandSetBitsAvx512(std::uint64_t *words, std::size_t n,
                    std::uint32_t base, std::uint32_t *dst)
{
    const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8,
                                           9, 10, 11, 12, 13, 14, 15);
    std::size_t out = 0;
    for (std::size_t w = 0; w < n; ++w) {
        std::uint64_t bits = words[w];
        if (bits == 0)
            continue;
        words[w] = 0;
        const std::uint32_t word_base =
            base + static_cast<std::uint32_t>(w) * 64u;
        // Sparse words: four masked compress-stores cost more than a
        // handful of ctz steps. Same ascending output either way, so
        // the cutover is invisible to callers.
        if (std::popcount(bits) < 8) {
            while (bits != 0) {
                dst[out++] =
                    word_base +
                    static_cast<std::uint32_t>(std::countr_zero(bits));
                bits &= bits - 1;
            }
            continue;
        }
        for (int half = 0; half < 4; ++half) {
            const auto m =
                static_cast<__mmask16>(bits >> (16 * half));
            if (m == 0)
                continue;
            const __m512i vals = _mm512_add_epi32(
                iota, _mm512_set1_epi32(static_cast<int>(
                          word_base + 16u * static_cast<unsigned>(
                                                half))));
            _mm512_mask_compressstoreu_epi32(dst + out, m, vals);
            out += static_cast<std::size_t>(
                std::popcount(static_cast<std::uint32_t>(m)));
        }
    }
    return out;
}

#undef MISAM_AVX512

#endif // __x86_64__

// ---------------------------------------------------------------------
// NEON kernels (aarch64 baseline; no runtime probe needed). The f64 and
// fold kernels stay on the scalar variants there — the integer paths
// are where NEON pays, and every variant is byte-identical anyway.
// ---------------------------------------------------------------------

#if defined(__aarch64__)

void
orIntoNeon(std::uint64_t *acc, const std::uint64_t *src,
           std::size_t words)
{
    std::size_t i = 0;
    for (; i + 2 <= words; i += 2) {
        const uint64x2_t a = vld1q_u64(acc + i);
        const uint64x2_t b = vld1q_u64(src + i);
        vst1q_u64(acc + i, vorrq_u64(a, b));
    }
    for (; i < words; ++i)
        acc[i] |= src[i];
}

std::uint64_t
popcountAndClearNeon(std::uint64_t *words, std::size_t n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    const uint64x2_t zero = vdupq_n_u64(0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v =
            vreinterpretq_u8_u64(vld1q_u64(words + i));
        const uint8x16_t cnt = vcntq_u8(v);
        acc = vaddq_u64(
            acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
        vst1q_u64(words + i, zero);
    }
    std::uint64_t total =
        vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; i < n; ++i) {
        total += static_cast<std::uint64_t>(std::popcount(words[i]));
        words[i] = 0;
    }
    return total;
}

uint64x2_t
fingerprintRoundNeon(uint64x2_t lane, uint64x2_t word)
{
    // NEON has no 64-bit vector multiply; the multiplies stay scalar
    // while the xor/rotate run vectorized. Lane math is unchanged.
    const uint64x2_t prod = {
        vgetq_lane_u64(word, 0) * kFpMul1,
        vgetq_lane_u64(word, 1) * kFpMul1,
    };
    const uint64x2_t mixed = veorq_u64(lane, prod);
    const uint64x2_t rot = vorrq_u64(vshlq_n_u64(mixed, 31),
                                     vshrq_n_u64(mixed, 33));
    return uint64x2_t{
        vgetq_lane_u64(rot, 0) * kFpMul2,
        vgetq_lane_u64(rot, 1) * kFpMul2,
    };
}

std::size_t
fingerprintBulkNeon(std::uint64_t lanes[4], const std::uint64_t *words,
                    std::size_t n)
{
    uint64x2_t s01 = vld1q_u64(lanes);
    uint64x2_t s23 = vld1q_u64(lanes + 2);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s01 = fingerprintRoundNeon(s01, vld1q_u64(words + i));
        s23 = fingerprintRoundNeon(s23, vld1q_u64(words + i + 2));
    }
    vst1q_u64(lanes, s01);
    vst1q_u64(lanes + 2, s23);
    return i;
}

void
packPairsU32Neon(std::uint64_t *dst, const std::uint32_t *src,
                 std::size_t pairs)
{
    // Little-endian aarch64: the pair layout is the packed word.
    std::size_t i = 0;
    for (; i + 2 <= pairs; i += 2) {
        vst1q_u64(dst + i,
                  vreinterpretq_u64_u32(vld1q_u32(src + 2 * i)));
    }
    packPairsU32Scalar(dst + i, src + 2 * i, pairs - i);
}

#endif // __aarch64__
// misam-lint: hot-path end

} // namespace

const char *
backendName(Backend backend)
{
    switch (backend) {
      case Backend::Scalar:
        return "scalar";
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
      case Backend::Avx512:
        return "avx512";
    }
    return "?";
}

bool
backendSupported(Backend backend)
{
    switch (backend) {
      case Backend::Scalar:
        return true;
      case Backend::Avx2:
#if defined(__x86_64__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case Backend::Neon:
#if defined(__aarch64__)
        return true;
#else
        return false;
#endif
      case Backend::Avx512:
#if defined(__x86_64__)
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512bw") != 0 &&
               __builtin_cpu_supports("avx512dq") != 0 &&
               __builtin_cpu_supports("avx512vl") != 0;
#else
        return false;
#endif
    }
    return false;
}

Backend
bestSupportedBackend()
{
    if (backendSupported(Backend::Avx512))
        return Backend::Avx512;
    if (backendSupported(Backend::Avx2))
        return Backend::Avx2;
    if (backendSupported(Backend::Neon))
        return Backend::Neon;
    return Backend::Scalar;
}

Backend
activeBackend()
{
    int current = g_backend.load(std::memory_order_relaxed);
    if (current < 0) {
        // Resolution is deterministic, so a first-use race just stores
        // the same value twice.
        current = static_cast<int>(resolveFromEnv());
        g_backend.store(current, std::memory_order_relaxed);
    }
    return static_cast<Backend>(current);
}

void
setBackendForTesting(Backend backend)
{
    if (!backendSupported(backend))
        fatal("setBackendForTesting: backend '", backendName(backend),
              "' is not executable on this host");
    g_backend.store(static_cast<int>(backend),
                    std::memory_order_relaxed);
    publishBackendGauge();
}

void
resetBackendFromEnv()
{
    g_backend.store(-1, std::memory_order_relaxed);
    publishBackendGauge();
}

void
orInto(std::uint64_t *acc, const std::uint64_t *src, std::size_t words)
{
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx2:
        orIntoAvx2(acc, src, words);
        return;
      case Backend::Avx512:
        orIntoAvx512(acc, src, words);
        return;
#endif
#if defined(__aarch64__)
      case Backend::Neon:
        orIntoNeon(acc, src, words);
        return;
#endif
      default:
        orIntoScalar(acc, src, words);
        return;
    }
}

std::uint64_t
popcountAndClear(std::uint64_t *words, std::size_t n)
{
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx2:
        return popcountAndClearAvx2(words, n);
      case Backend::Avx512:
        return popcountAndClearAvx512(words, n);
#endif
#if defined(__aarch64__)
      case Backend::Neon:
        return popcountAndClearNeon(words, n);
#endif
      default:
        return popcountAndClearScalar(words, n);
    }
}

std::size_t
fingerprintBulk(std::uint64_t lanes[4], const std::uint64_t *words,
                std::size_t n)
{
    bumpBy(g_fingerprint_blocks, g_mirror_fingerprint_blocks, 1);
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx2:
        return fingerprintBulkAvx2(lanes, words, n);
      case Backend::Avx512:
        return fingerprintBulkAvx512(lanes, words, n);
#endif
#if defined(__aarch64__)
      case Backend::Neon:
        return fingerprintBulkNeon(lanes, words, n);
#endif
      default:
        return fingerprintBulkScalar(lanes, words, n);
    }
}

void
packPairsU32(std::uint64_t *dst, const std::uint32_t *src,
             std::size_t pairs)
{
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx2:
        packPairsU32Avx2(dst, src, pairs);
        return;
      case Backend::Avx512:
        packPairsU32Avx512(dst, src, pairs);
        return;
#endif
#if defined(__aarch64__)
      case Backend::Neon:
        packPairsU32Neon(dst, src, pairs);
        return;
#endif
      default:
        packPairsU32Scalar(dst, src, pairs);
        return;
    }
}

void
ceilDivWeights(std::uint64_t *dst, const std::uint64_t *row_nnz,
               std::size_t n, double eff_lanes, std::uint64_t meta)
{
    bumpBy(g_weight_builds, g_mirror_weight_builds, 1);
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx2:
        ceilDivWeightsAvx2(dst, row_nnz, n, eff_lanes, meta);
        return;
      case Backend::Avx512:
        ceilDivWeightsAvx512(dst, row_nnz, n, eff_lanes, meta);
        return;
#endif
      default:
        ceilDivWeightsScalar(dst, row_nnz, n, eff_lanes, meta);
        return;
    }
}

PeFold
peScheduleFold(const std::uint64_t *acc4, std::size_t n,
               std::uint64_t dep)
{
    bumpBy(g_pe_folds, g_mirror_pe_folds, 1);
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx2:
        return peScheduleFoldAvx2(acc4, n, dep);
      case Backend::Avx512:
        return peScheduleFoldAvx512(acc4, n, dep);
#endif
      default:
        return peScheduleFoldScalar(acc4, n, dep);
    }
}

std::size_t
expandSetBits(std::uint64_t *words, std::size_t n, std::uint32_t base,
              std::uint32_t *dst)
{
    switch (activeBackend()) {
#if defined(__x86_64__)
      case Backend::Avx512:
        return expandSetBitsAvx512(words, n, base, dst);
#endif
      default:
        return expandSetBitsScalar(words, n, base, dst);
    }
}

SimdCounters
simdCounters()
{
    SimdCounters c;
    c.bitmap_rows = g_bitmap_rows.load(std::memory_order_relaxed);
    c.fingerprint_blocks =
        g_fingerprint_blocks.load(std::memory_order_relaxed);
    c.weight_builds = g_weight_builds.load(std::memory_order_relaxed);
    c.pe_folds = g_pe_folds.load(std::memory_order_relaxed);
    c.csc_blocked = g_csc_blocked.load(std::memory_order_relaxed);
    c.expand_rows = g_expand_rows.load(std::memory_order_relaxed);
    return c;
}

void
noteBitmapRows(std::uint64_t rows)
{
    bumpBy(g_bitmap_rows, g_mirror_bitmap_rows, rows);
}

void
noteBlockedCsc()
{
    bumpBy(g_csc_blocked, g_mirror_csc_blocked, 1);
}

void
noteExpandRows(std::uint64_t rows)
{
    bumpBy(g_expand_rows, g_mirror_expand_rows, rows);
}

void
setSimdMetrics(MetricsRegistry *registry)
{
    if (registry == nullptr) {
        g_mirror_bitmap_rows.store(nullptr, std::memory_order_relaxed);
        g_mirror_fingerprint_blocks.store(nullptr,
                                          std::memory_order_relaxed);
        g_mirror_weight_builds.store(nullptr,
                                     std::memory_order_relaxed);
        g_mirror_pe_folds.store(nullptr, std::memory_order_relaxed);
        g_mirror_csc_blocked.store(nullptr, std::memory_order_relaxed);
        g_mirror_expand_rows.store(nullptr, std::memory_order_relaxed);
        g_mirror_backend.store(nullptr, std::memory_order_relaxed);
        return;
    }
    g_mirror_bitmap_rows.store(
        &registry->counter("simd.bitmap_rows"),
        std::memory_order_relaxed);
    g_mirror_fingerprint_blocks.store(
        &registry->counter("simd.fingerprint_blocks"),
        std::memory_order_relaxed);
    g_mirror_weight_builds.store(
        &registry->counter("simd.weight_builds"),
        std::memory_order_relaxed);
    g_mirror_pe_folds.store(&registry->counter("simd.pe_folds"),
                            std::memory_order_relaxed);
    g_mirror_csc_blocked.store(&registry->counter("simd.csc_blocked"),
                               std::memory_order_relaxed);
    g_mirror_expand_rows.store(
        &registry->counter("simd.expand_rows"),
        std::memory_order_relaxed);
    g_mirror_backend.store(&registry->gauge("simd.backend"),
                           std::memory_order_relaxed);
    publishBackendGauge();
}

} // namespace misam::simd
