/**
 * @file
 * Deterministic parallel execution primitives.
 *
 * The dominant wall-clock cost of every bench is labeling training
 * samples with the four cycle-level design simulators. Each sample is
 * independent once it derives its own Rng stream from
 * (seed, sample_index) — see Rng(seed, stream) / deriveSeed() — so the
 * loops can fan out across threads with bit-identical output for any
 * thread count, including 1.
 *
 * The pool is deliberately work-stealing-free: one shared atomic index
 * counter feeds every worker. Determinism never depends on which thread
 * runs which index (work bodies may only touch state owned by their
 * index), so the simplest possible scheduler is also the correct one.
 *
 * Thread-count resolution, everywhere a `threads` knob appears:
 *   explicit argument > 0  →  that many threads
 *   MISAM_THREADS env var  →  its value
 *   otherwise              →  std::thread::hardware_concurrency()
 */

#ifndef MISAM_UTIL_PARALLEL_HH
#define MISAM_UTIL_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace misam {

/** hardware_concurrency(), never 0. */
unsigned hardwareThreads();

/**
 * Resolve a thread-count request: `requested` if positive, else the
 * MISAM_THREADS environment override, else the hardware default.
 */
unsigned resolveThreads(unsigned requested = 0);

/**
 * True while the calling thread is executing inside a parallelFor body.
 * Nested parallelFor calls detect this and run inline — the outer loop
 * already owns all the parallelism, and recursing into the pool from a
 * pool worker would deadlock.
 */
bool inParallelRegion();

/**
 * A fixed-size pool of workers that drain one indexed job at a time
 * from a shared atomic counter (no per-thread deques, no stealing).
 * Jobs are serialized: concurrent forEach() calls queue on a mutex.
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (0 is valid: forEach runs inline). */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Number of pool workers (excludes calling threads). */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run fn(i) for every i in [0, n) exactly once, on at most
     * `max_workers` pool workers plus the calling thread. Blocks until
     * every index has run. fn must not throw and may only write state
     * owned by its index. Grows the worker set on demand (capped at
     * kMaxWorkers) so an explicit thread request exceeding the initial
     * size still gets real threads — oversubscription on small hosts is
     * preferable to silently serializing an explicit request.
     */
    void forEach(std::size_t n, const std::function<void(std::size_t)> &fn,
                 unsigned max_workers);

    /** Hard cap on pool workers regardless of requests. */
    static constexpr unsigned kMaxWorkers = 64;

    /**
     * The process-wide pool, lazily built with resolveThreads(0) - 1
     * workers (the submitting thread is the remaining lane). Sized once
     * at first use; later MISAM_THREADS changes are ignored, but
     * explicit per-call thread counts can still grow it.
     */
    static ThreadPool &global();

  private:
    void workerLoop(std::uint64_t start_generation);
    void ensureWorkers(unsigned target);
    void drainJob(std::size_t n,
                  const std::function<void(std::size_t)> &fn);

    std::mutex mutex_;
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;

    // State of the in-flight job; written under mutex_ before the
    // generation bump, stable until every worker reports done.
    const std::function<void(std::size_t)> *job_fn_ = nullptr;
    std::size_t job_n_ = 0;
    unsigned job_max_workers_ = 0;
    std::atomic<std::size_t> job_next_{0};
    std::atomic<unsigned> job_claims_{0};
    unsigned workers_pending_ = 0;

    std::mutex submit_mutex_; ///< Serializes forEach callers.
    std::vector<std::thread> workers_;
};

/**
 * Run fn(i) for every i in [0, n) exactly once.
 *
 * `threads` resolves as documented above; with a resolved count of 1,
 * n <= 1, or when already inside a parallel region, the loop runs
 * inline on the calling thread — same indices, same results. The
 * effective worker count is capped by the global pool's size.
 */
void parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
                 unsigned threads = 0);

} // namespace misam

#endif // MISAM_UTIL_PARALLEL_HH
