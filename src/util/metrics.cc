// misam-lint: allow-file(no-wall-clock) -- ScopedTimer's steady_clock
// reads are the one sanctioned wall-clock source; they only feed Timer
// cells, which never enter a golden trace body (events carry logical
// sequence numbers).

#include "util/metrics.hh"

#include <cinttypes>
#include <cstdio>

#include "util/logging.hh"

namespace misam {

void
Timer::addSeconds(double s)
{
    // fetch_add on atomic<double> is C++20; keep a CAS loop so the
    // sanitizer builds exercise the same code path as the default one.
    double cur = seconds_.load(std::memory_order_relaxed);
    while (!seconds_.compare_exchange_weak(cur, cur + s,
                                           std::memory_order_relaxed))
        ;
    count_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/**
 * Find-or-create a cell in one of the registry's (deque, map) pairs.
 * Called under the registry mutex.
 */
template <typename Cell>
Cell &
resolveCell(std::string_view name, std::deque<Cell> &cells,
            std::map<std::string, Cell *, std::less<>> &index)
{
    const auto it = index.find(name);
    if (it != index.end())
        return *it->second;
    cells.emplace_back();
    Cell &cell = cells.back();
    index.emplace(std::string(name), &cell);
    return cell;
}

} // namespace

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resolveCell(name, counter_cells_, counters_);
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resolveCell(name, gauge_cells_, gauges_);
}

Timer &
MetricsRegistry::timer(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return resolveCell(name, timer_cells_, timers_);
}

std::uint64_t
MetricsRegistry::counterValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

double
MetricsRegistry::gaugeValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second->value();
}

double
MetricsRegistry::timerSeconds(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second->seconds();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, cell] : counters_)
        out.emplace_back(name, cell->value());
    return out;
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::gauges() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(gauges_.size());
    for (const auto &[name, cell] : gauges_)
        out.emplace_back(name, cell->value());
    return out;
}

std::vector<std::pair<std::string, MetricsRegistry::TimerSnapshot>>
MetricsRegistry::timers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, TimerSnapshot>> out;
    out.reserve(timers_.size());
    for (const auto &[name, cell] : timers_)
        out.emplace_back(name,
                         TimerSnapshot{cell->seconds(), cell->count()});
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Counter &c : counter_cells_)
        c.value_.store(0, std::memory_order_relaxed);
    for (Gauge &g : gauge_cells_)
        g.value_.store(0.0, std::memory_order_relaxed);
    for (Timer &t : timer_cells_) {
        t.seconds_.store(0.0, std::memory_order_relaxed);
        t.count_.store(0, std::memory_order_relaxed);
    }
}

ScopedTimer::ScopedTimer(Timer &timer)
    : timer_(&timer), start_(std::chrono::steady_clock::now())
{
}

ScopedTimer::ScopedTimer(MetricsRegistry &registry, std::string_view name)
    : ScopedTimer(registry.timer(name))
{
}

ScopedTimer::~ScopedTimer()
{
    if (timer_)
        stop();
}

double
ScopedTimer::stop()
{
    if (!timer_)
        return 0.0;
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
    timer_->addSeconds(s);
    timer_ = nullptr;
    return s;
}

void
appendJsonString(std::string &out, std::string_view s)
{
    out += '"';
    for (const char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

std::string
jsonNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

MetricsSink::MetricsSink(std::ostream &out) : out_(&out) {}

MetricsSink::MetricsSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get())
{
    if (!*owned_)
        fatal("MetricsSink: cannot create ", path);
}

MetricsSink::~MetricsSink()
{
    out_->flush();
}

void
MetricsSink::event(std::string_view ev,
                   std::initializer_list<MetricField> fields)
{
    writeLine(ev, fields.begin(), fields.size());
}

void
MetricsSink::event(std::string_view ev,
                   const std::vector<MetricField> &fields)
{
    writeLine(ev, fields.data(), fields.size());
}

void
MetricsSink::writeLine(std::string_view ev, const MetricField *fields,
                       std::size_t n)
{
    std::string line;
    line.reserve(64 + 24 * n);
    line += "{\"ev\":";
    appendJsonString(line, ev);

    std::lock_guard<std::mutex> lock(mutex_);
    line += ",\"t\":";
    line += std::to_string(next_t_++);
    for (std::size_t f = 0; f < n; ++f) {
        const MetricField &field = fields[f];
        line += ',';
        appendJsonString(line, field.key);
        line += ':';
        switch (field.kind) {
          case MetricField::Kind::U64:
            line += std::to_string(field.u);
            break;
          case MetricField::Kind::I64:
            line += std::to_string(field.i);
            break;
          case MetricField::Kind::F64:
            line += jsonNumber(field.d);
            break;
          case MetricField::Kind::Str:
            appendJsonString(line, field.s);
            break;
        }
    }
    line += "}\n";
    *out_ << line;
}

void
MetricsSink::emitRegistry(const MetricsRegistry &registry)
{
    for (const auto &[name, value] : registry.counters())
        event("counter", {{"name", std::string_view(name)},
                          {"value", value}});
    for (const auto &[name, value] : registry.gauges())
        event("gauge",
              {{"name", std::string_view(name)}, {"value", value}});
    for (const auto &[name, snap] : registry.timers())
        event("timer", {{"name", std::string_view(name)},
                        {"seconds", snap.seconds},
                        {"count", snap.count}});
}

std::uint64_t
MetricsSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return next_t_;
}

} // namespace misam
