/**
 * @file
 * Logging and error-reporting helpers in the gem5 style.
 *
 * `inform` reports normal status, `warn` flags suspicious-but-survivable
 * conditions, `fatal` terminates on user error (bad configuration or
 * arguments), and `panic` aborts on an internal invariant violation that
 * indicates a bug in this library.
 */

#ifndef MISAM_UTIL_LOGGING_HH
#define MISAM_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace misam {

/** Severity of a log message. */
enum class LogLevel { Info, Warn, Fatal, Panic };

/**
 * Emit a formatted log line to stderr.
 *
 * @param level Severity tag to prefix the message with.
 * @param msg   Fully formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/** True once verbose (info-level) logging has been enabled. */
bool verboseLogging();

/** Enable or disable info-level logging (warnings always print). */
void setVerboseLogging(bool enabled);

namespace detail {

/** Concatenate arbitrary streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report normal operating status; suppressed unless verbose. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (verboseLogging())
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious condition that does not stop execution. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Terminate due to a user error (bad inputs or configuration). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    logMessage(LogLevel::Fatal, detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/** Abort due to an internal invariant violation (a library bug). */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    logMessage(LogLevel::Panic, detail::concat(std::forward<Args>(args)...));
    std::abort();
}

} // namespace misam

#endif // MISAM_UTIL_LOGGING_HH
