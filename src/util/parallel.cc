#include "util/parallel.hh"

#include <cstdlib>

#include "util/env.hh"

namespace misam {

namespace {

thread_local bool t_in_parallel_region = false;

/** RAII flag so nested parallelFor calls fall back to inline. */
struct RegionGuard
{
    RegionGuard() { t_in_parallel_region = true; }
    ~RegionGuard() { t_in_parallel_region = false; }
};

} // namespace

unsigned
hardwareThreads()
{
    const unsigned h = std::thread::hardware_concurrency();
    return h > 0 ? h : 1;
}

unsigned
resolveThreads(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = envRaw("MISAM_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return hardwareThreads();
}

bool
inParallelRegion()
{
    return t_in_parallel_region;
}

ThreadPool::ThreadPool(unsigned threads)
{
    ensureWorkers(threads);
}

void
ThreadPool::ensureWorkers(unsigned target)
{
    // Only called from the constructor or under submit_mutex_ with no
    // job in flight, so pushing to workers_ is safe. New workers must
    // start from the *current* generation, not 0: otherwise a pool that
    // has already run jobs (generation_ > 0) would satisfy the wake
    // predicate immediately and the fresh worker would run a phantom
    // pass over stale job state.
    if (target > kMaxWorkers)
        target = kMaxWorkers;
    std::uint64_t g;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        g = generation_;
    }
    while (workers_.size() < target)
        workers_.emplace_back([this, g] { workerLoop(g); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::drainJob(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    RegionGuard guard;
    for (;;) {
        const std::size_t i =
            job_next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        fn(i);
    }
}

void
ThreadPool::workerLoop(std::uint64_t start_generation)
{
    std::uint64_t seen = start_generation;
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        wake_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        const std::size_t n = job_n_;
        const std::function<void(std::size_t)> *fn = job_fn_;
        // Claim a participation slot; late wakers past the cap skip the
        // job body entirely but still must report done below.
        const bool participate =
            job_claims_.fetch_add(1, std::memory_order_relaxed) <
            job_max_workers_;
        lk.unlock();
        if (participate)
            drainJob(n, *fn);
        lk.lock();
        if (--workers_pending_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &fn,
                    unsigned max_workers)
{
    std::lock_guard<std::mutex> submit(submit_mutex_);
    ensureWorkers(max_workers);
    if (workers_.empty() || max_workers == 0) {
        RegionGuard guard;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_fn_ = &fn;
        job_n_ = n;
        job_max_workers_ = max_workers;
        job_next_.store(0, std::memory_order_relaxed);
        job_claims_.store(0, std::memory_order_relaxed);
        workers_pending_ = threadCount();
        ++generation_;
    }
    wake_cv_.notify_all();
    drainJob(n, fn); // The caller is a lane too.
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return workers_pending_ == 0; });
    job_fn_ = nullptr;
}

ThreadPool &
ThreadPool::global()
{
    // misam-lint: allow(guarded-state) -- magic-static init is thread-safe and ThreadPool synchronizes internally (job_mutex_/done_cv_)
    static ThreadPool pool(
        resolveThreads(0) > 1 ? resolveThreads(0) - 1 : 0);
    return pool;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn,
            unsigned threads)
{
    const unsigned t = resolveThreads(threads);
    if (n <= 1 || t <= 1 || inParallelRegion()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool::global().forEach(n, fn, t - 1);
}

} // namespace misam
