#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace misam {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double mu = mean(xs);
    double sum = 0.0;
    for (double x : xs)
        sum += (x - mu) * (x - mu);
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            panic("geomean: non-positive value ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
minValue(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("minValue: empty input");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxValue(const std::vector<double> &xs)
{
    if (xs.empty())
        panic("maxValue: empty input");
    return *std::max_element(xs.begin(), xs.end());
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        panic("quantile: empty input");
    if (q < 0.0 || q > 1.0)
        panic("quantile: q out of range ", q);
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
meanAbsoluteError(const std::vector<double> &actual,
                  const std::vector<double> &predicted)
{
    if (actual.size() != predicted.size())
        panic("meanAbsoluteError: size mismatch");
    if (actual.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i)
        sum += std::abs(actual[i] - predicted[i]);
    return sum / static_cast<double>(actual.size());
}

double
rSquared(const std::vector<double> &actual,
         const std::vector<double> &predicted)
{
    if (actual.size() != predicted.size())
        panic("rSquared: size mismatch");
    if (actual.empty())
        return 0.0;
    const double mu = mean(actual);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
        ss_tot += (actual[i] - mu) * (actual[i] - mu);
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x > 0.0)
        log_sum_ += std::log(x);
    else
        all_positive_ = false;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    if (count_ == 0)
        panic("RunningStats::min: no samples");
    return min_;
}

double
RunningStats::max() const
{
    if (count_ == 0)
        panic("RunningStats::max: no samples");
    return max_;
}

double
RunningStats::geomean() const
{
    if (count_ == 0)
        return 0.0;
    if (!all_positive_)
        panic("RunningStats::geomean: saw non-positive samples");
    return std::exp(log_sum_ / static_cast<double>(count_));
}

} // namespace misam
