#include "util/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace misam {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        panic("TextTable: empty header");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size())
        panic("TextTable::addRow: arity mismatch (", row.size(), " vs ",
              header_.size(), ")");
    rows_.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        oss << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
formatSpeedup(double value, int precision)
{
    return formatDouble(value, precision) + "x";
}

std::string
formatScientific(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
    return buf;
}

std::string
formatCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int since_sep = static_cast<int>(digits.size() % 3);
    if (since_sep == 0)
        since_sep = 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i > 0 && since_sep == 0) {
            out += ',';
            since_sep = 3;
        }
        out += digits[i];
        --since_sep;
    }
    return out;
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

std::string
formatBar(double frac, int width)
{
    frac = std::clamp(frac, 0.0, 1.0);
    const int filled = static_cast<int>(frac * width + 0.5);
    std::string out;
    out.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i)
        out += i < filled ? '#' : '.';
    return out;
}

} // namespace misam
