#include "util/random.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hh"

namespace misam {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    // Injective per-seed combination (stream scaled by the splitmix64
    // golden-ratio increment), then one finalizer pass. The Rng
    // constructor splitmixes again, so neighbouring streams share no
    // state structure.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    return splitmix64(z);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : Rng(deriveSeed(seed, stream))
{
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::uniformInt: bound must be positive");
    // 128-bit multiply-shift scaling (Lemire); bias is negligible for the
    // bounds used in this library and determinism is what matters.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return spare_normal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_normal_ = radius * std::sin(theta);
    have_spare_normal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::uint64_t
Rng::powerLaw(std::uint64_t max_value, double alpha)
{
    if (max_value == 0)
        panic("Rng::powerLaw: max_value must be positive");
    // Inverse-CDF sampling of p(x) ~ x^-alpha on [1, max_value].
    const double u = uniform();
    const double exponent = 1.0 - alpha;
    double x = 0.0;
    if (std::abs(exponent) < 1e-9) {
        x = std::exp(u * std::log(static_cast<double>(max_value)));
    } else {
        const double max_pow = std::pow(static_cast<double>(max_value),
                                        exponent);
        x = std::pow(1.0 + u * (max_pow - 1.0), 1.0 / exponent);
    }
    const auto value = static_cast<std::uint64_t>(x);
    return std::clamp<std::uint64_t>(value, 1, max_value);
}

std::vector<std::uint64_t>
Rng::sampleDistinct(std::uint64_t n, std::uint64_t k)
{
    if (k > n)
        panic("Rng::sampleDistinct: k > n");
    // Floyd's algorithm: k iterations, O(k) memory.
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(k);
    for (std::uint64_t j = n - k; j < n; ++j) {
        std::uint64_t t = uniformInt(j + 1);
        if (!chosen.insert(t).second)
            chosen.insert(j);
    }
    std::vector<std::uint64_t> out(chosen.begin(), chosen.end());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace misam
