/**
 * @file
 * Summary-statistics helpers used throughout the evaluation harness:
 * means, variance, geometric means (the paper reports geomean speedups),
 * quantiles, and a small online accumulator.
 */

#ifndef MISAM_UTIL_STATS_HH
#define MISAM_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace misam {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population variance; 0 for fewer than two samples. */
double variance(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/**
 * Geometric mean of strictly positive values; 0 for an empty input.
 * Values <= 0 are a caller bug and trigger a panic.
 */
double geomean(const std::vector<double> &xs);

/** Minimum; panics on empty input. */
double minValue(const std::vector<double> &xs);

/** Maximum; panics on empty input. */
double maxValue(const std::vector<double> &xs);

/**
 * Linear-interpolation quantile, q in [0, 1]; panics on empty input.
 * q = 0.5 yields the median.
 */
double quantile(std::vector<double> xs, double q);

/** Median absolute value of (a[i] - b[i]) divided by n: mean absolute error. */
double meanAbsoluteError(const std::vector<double> &actual,
                         const std::vector<double> &predicted);

/** Coefficient of determination R^2 of predictions against actuals. */
double rSquared(const std::vector<double> &actual,
                const std::vector<double> &predicted);

/**
 * Online accumulator for streaming mean/variance/min/max via Welford's
 * algorithm, plus a log-sum for geometric means.
 */
class RunningStats
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    /** Number of samples added so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean of the samples; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample; panics when empty. */
    double min() const;

    /** Largest sample; panics when empty. */
    double max() const;

    /** Geometric mean; only valid if every sample was positive. */
    double geomean() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double log_sum_ = 0.0;
    bool all_positive_ = true;
};

} // namespace misam

#endif // MISAM_UTIL_STATS_HH
