/**
 * @file
 * Lightweight observability layer: a thread-compatible metrics registry
 * (named monotonic counters, gauges, and wall-clock timers) plus a JSONL
 * event-trace sink.
 *
 * Design constraints, in order:
 *
 *  1. Cheap enough to stay on in hot loops. Hot paths resolve a metric
 *     name to a cell handle once (`Counter &c = reg.counter("x")`) and
 *     then pay one relaxed atomic RMW per update. Cells have stable
 *     addresses for the registry's lifetime.
 *  2. Deterministic output. Registry snapshots iterate in sorted name
 *     order; counter values are order-independent sums, so they are
 *     identical for any `MISAM_THREADS` value. Event streams carry a
 *     logical sequence number `t` (not wall time), so a trace produced
 *     from deterministic inputs is byte-stable — the property the
 *     golden-trace suite under `tests/golden/` pins.
 *  3. Zero effect on simulated results. Nothing in the simulators reads
 *     a metric; registries and sinks are pure observers.
 *
 * JSONL schema (one event per line, `docs/OBSERVABILITY.md` catalogs
 * the emitted events):
 *
 *     {"ev":"<event-name>","t":<seq>,"<key>":<value>,...}
 *
 * `ev` is the event name, `t` a per-sink monotonically increasing
 * sequence number starting at 0. Remaining fields are event-specific
 * key/value pairs (integers, doubles, or strings).
 */

// misam-lint: allow-file(no-wall-clock) -- this IS the sanctioned
// wall-clock measurement layer: ScopedTimer feeds host-side Timer
// cells only; nothing simulated or emitted in a golden trace reads it.

#ifndef MISAM_UTIL_METRICS_HH
#define MISAM_UTIL_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace misam {

/** Monotonic counter cell. Updates are relaxed atomic adds. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written-value gauge cell. */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<double> value_{0.0};
};

/** Accumulating wall-clock timer cell (seconds + record count). */
class Timer
{
  public:
    /** Fold `s` seconds into the accumulated total. */
    void addSeconds(double s);

    double
    seconds() const
    {
        return seconds_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<double> seconds_{0.0};
    std::atomic<std::uint64_t> count_{0};
};

/**
 * A named collection of counters, gauges, and timers.
 *
 * Name resolution takes a mutex; updates through the returned handles
 * are lock-free. Thread-compatible: concurrent updates to the same cell
 * commute (counters/timers) or race benignly to a last-writer value
 * (gauges), so final counter values are deterministic for any thread
 * count.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Cell handles: created on first use, stable addresses afterward. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Timer &timer(std::string_view name);

    /** One-shot conveniences (resolve the name every call). */
    void
    add(std::string_view name, std::uint64_t delta = 1)
    {
        counter(name).add(delta);
    }

    void
    set(std::string_view name, double value)
    {
        gauge(name).set(value);
    }

    void
    addSeconds(std::string_view name, double s)
    {
        timer(name).addSeconds(s);
    }

    /** Value reads; 0 when the metric does not exist. */
    std::uint64_t counterValue(std::string_view name) const;
    double gaugeValue(std::string_view name) const;
    double timerSeconds(std::string_view name) const;

    /** Accumulated timer value. */
    struct TimerSnapshot
    {
        double seconds = 0.0;
        std::uint64_t count = 0;
    };

    /** Snapshots in sorted name order (deterministic iteration). */
    std::vector<std::pair<std::string, std::uint64_t>> counters() const;
    std::vector<std::pair<std::string, double>> gauges() const;
    std::vector<std::pair<std::string, TimerSnapshot>> timers() const;

    /** Zero every cell; existing handles remain valid. */
    void reset();

  private:
    mutable std::mutex mutex_;
    // Cells live in deques (stable addresses across growth); maps index
    // them by name. transparent comparators let string_view lookups
    // avoid a temporary std::string on the hit path.
    std::deque<Counter> counter_cells_;
    std::deque<Gauge> gauge_cells_;
    std::deque<Timer> timer_cells_;
    std::map<std::string, Counter *, std::less<>> counters_;
    std::map<std::string, Gauge *, std::less<>> gauges_;
    std::map<std::string, Timer *, std::less<>> timers_;
};

/**
 * RAII wall-clock timer: accumulates the elapsed seconds into a Timer
 * cell (or a named registry timer) on destruction or stop().
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Timer &timer);
    ScopedTimer(MetricsRegistry &registry, std::string_view name);

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer();

    /** Record now and disarm; returns the elapsed seconds. */
    double stop();

  private:
    Timer *timer_;
    std::chrono::steady_clock::time_point start_;
};

/** One key/value field of a JSONL event. */
struct MetricField
{
    enum class Kind { U64, I64, F64, Str };

    MetricField(std::string_view k, std::uint64_t v)
        : key(k), kind(Kind::U64), u(v)
    {
    }
    MetricField(std::string_view k, std::int64_t v)
        : key(k), kind(Kind::I64), i(v)
    {
    }
    MetricField(std::string_view k, int v)
        : key(k), kind(Kind::I64), i(v)
    {
    }
    MetricField(std::string_view k, double v)
        : key(k), kind(Kind::F64), d(v)
    {
    }
    MetricField(std::string_view k, std::string_view v)
        : key(k), kind(Kind::Str), s(v)
    {
    }
    MetricField(std::string_view k, const char *v)
        : key(k), kind(Kind::Str), s(v)
    {
    }

    std::string_view key;
    Kind kind;
    std::uint64_t u = 0;
    std::int64_t i = 0;
    double d = 0.0;
    std::string_view s;
};

/**
 * JSONL event-trace sink. Each event() call writes exactly one line of
 * the documented schema and flushes at destruction. Writes are
 * mutex-serialized, so a sink may be shared across threads — but for
 * byte-stable traces, emit events from one thread in a deterministic
 * order (the pattern every built-in emitter follows).
 */
class MetricsSink
{
  public:
    /** Write to a borrowed stream (caller keeps it alive). */
    explicit MetricsSink(std::ostream &out);

    /** Create/truncate `path`; fatal() when the file cannot be opened. */
    explicit MetricsSink(const std::string &path);

    MetricsSink(const MetricsSink &) = delete;
    MetricsSink &operator=(const MetricsSink &) = delete;

    ~MetricsSink();

    /** Append one event line; `t` is assigned from the sequence. */
    void event(std::string_view ev,
               std::initializer_list<MetricField> fields);
    void event(std::string_view ev,
               const std::vector<MetricField> &fields);

    /**
     * Emit the registry's current state as `counter` / `gauge` / `timer`
     * events, sorted by name — a deterministic flush of everything the
     * run accumulated.
     */
    void emitRegistry(const MetricsRegistry &registry);

    /** Events written so far (== the next event's `t`). */
    std::uint64_t eventCount() const;

  private:
    void writeLine(std::string_view ev, const MetricField *fields,
                   std::size_t n);

    mutable std::mutex mutex_;
    std::unique_ptr<std::ofstream> owned_;
    std::ostream *out_;
    std::uint64_t next_t_ = 0;
};

/** Append one JSON-escaped string literal (with quotes) to `out`. */
void appendJsonString(std::string &out, std::string_view s);

/** Format a double as a JSON number (deterministic shortest %.17g). */
std::string jsonNumber(double v);

} // namespace misam

#endif // MISAM_UTIL_METRICS_HH
