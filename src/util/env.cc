#include "util/env.hh"

#include <cstdlib>

namespace misam {

const char *
envRaw(const char *name)
{
    return std::getenv(name);
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *value = std::getenv(name);
    return value ? std::string(value) : fallback;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || *value == '\0')
        return fallback;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value)
        return fallback;
    return static_cast<std::uint64_t>(parsed);
}

double
envF64(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || *value == '\0')
        return fallback;
    char *end = nullptr;
    const double parsed = std::strtod(value, &end);
    if (end == value)
        return fallback;
    return parsed;
}

} // namespace misam
