/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (matrix generation, dataset
 * synthesis, train/validation splits) flows through Rng so results are
 * reproducible across runs and platforms given the same seed. The engine is
 * xoshiro256**, which is fast, high quality, and trivially seedable.
 */

#ifndef MISAM_UTIL_RANDOM_HH
#define MISAM_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace misam {

/**
 * Derive an independent substream seed from (seed, stream) via the
 * splitmix64 finalizer. For a fixed seed, distinct streams map to
 * distinct inputs (the combination is injective), and the finalizer
 * decorrelates neighbouring streams.
 *
 * This is what makes sample generation order-independent: worker i
 * seeds its own Rng from deriveSeed(cfg.seed, i) instead of sharing
 * one sequential stream, so any thread count produces identical
 * per-index draws.
 */
std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t stream);

/**
 * A seedable xoshiro256** generator with convenience distributions.
 *
 * Unlike std::mt19937 + std::*_distribution, the outputs here are fully
 * specified by this implementation and therefore identical on every
 * platform, which keeps tests and benchmark tables stable.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Construct substream `stream` of `seed` (see deriveSeed). */
    Rng(std::uint64_t seed, std::uint64_t stream);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) using rejection-free scaling. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Geometric-like power-law integer in [1, max_value] with exponent
     * `alpha` (larger alpha -> heavier concentration at small values).
     */
    std::uint64_t powerLaw(std::uint64_t max_value, double alpha);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample k distinct indices from [0, n) in sorted order.
     * Uses Floyd's algorithm; requires k <= n.
     */
    std::vector<std::uint64_t> sampleDistinct(std::uint64_t n,
                                              std::uint64_t k);

  private:
    std::uint64_t state_[4];
    bool have_spare_normal_ = false;
    double spare_normal_ = 0.0;
};

} // namespace misam

#endif // MISAM_UTIL_RANDOM_HH
