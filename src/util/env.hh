/**
 * @file
 * The one sanctioned doorway to process environment variables.
 *
 * misam-lint's no-raw-getenv rule bans std::getenv outside src/util/:
 * ambient environment reads scattered through the library are invisible
 * inputs that break the "same seed, same bytes" contract. Every env
 * knob instead flows through these helpers, so the full set of
 * environment inputs is grep-able from one header.
 */

#ifndef MISAM_UTIL_ENV_HH
#define MISAM_UTIL_ENV_HH

#include <cstdint>
#include <string>

namespace misam {

/** Raw value of `name`, or nullptr when unset. */
const char *envRaw(const char *name);

/** Value of `name`, or `fallback` when unset. */
std::string envString(const char *name, const std::string &fallback = {});

/** Unsigned value of `name`; `fallback` when unset or unparseable. */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

/** Double value of `name`; `fallback` when unset or unparseable. */
double envF64(const char *name, double fallback);

} // namespace misam

#endif // MISAM_UTIL_ENV_HH
