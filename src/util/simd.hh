/**
 * @file
 * Portable fixed-width SIMD kernels with runtime dispatch.
 *
 * The simulator's hot loops (fused symbolic SpGEMM, PE-stat folds,
 * Design-4 job weights, fingerprint bulk hashing) bottom out in a small
 * set of flat-array kernels. This header is their one doorway: each
 * kernel has a scalar reference implementation plus vector variants
 * (AVX2/AVX-512 on x86-64, NEON on aarch64) compiled into
 * src/util/simd.cc and selected once per process at first use.
 * misam-lint's
 * no-raw-intrinsics rule confines the intrinsics themselves to
 * src/util/simd.* so no other translation unit can fork behavior on the
 * instruction set.
 *
 * Determinism contract: every kernel is integer-exact or element-wise
 * IEEE-identical to its scalar variant — fixed-width lanes, no
 * reassociated floating-point reductions — so results are byte-equal
 * across backends and `MISAM_THREADS`. tests/test_simd_dispatch.cpp
 * pins each kernel scalar-vs-best and re-runs the golden workloads per
 * backend.
 *
 * Backend selection: the best instruction set the host supports, unless
 * `MISAM_SIMD=scalar|avx2|neon|avx512` (read through util/env.hh)
 * forces one. Forcing a backend the host cannot execute is a fatal
 * configuration error rather than a silent downgrade.
 */

#ifndef MISAM_UTIL_SIMD_HH
#define MISAM_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace misam {

class MetricsRegistry;

namespace simd {

/** Dispatch targets, in increasing preference order per platform. */
enum class Backend
{
    Scalar = 0,
    Avx2 = 1,
    Neon = 2,
    Avx512 = 3,
};

/** Stable lowercase name ("scalar", "avx2", "neon", "avx512"). */
const char *backendName(Backend backend);

/** True when this host can execute `backend`. Scalar always can. */
bool backendSupported(Backend backend);

/** The widest backend this host supports. */
Backend bestSupportedBackend();

/**
 * The backend every kernel currently dispatches to: resolved once from
 * `MISAM_SIMD` / CPU detection on first use, or the last value forced
 * by setBackendForTesting().
 */
Backend activeBackend();

/**
 * Force the dispatch target (test/bench only). Fatal when the host
 * cannot execute `backend`. Not thread-safe against in-flight kernels;
 * callers flip it between single-threaded phases.
 */
void setBackendForTesting(Backend backend);

/** Drop a forced backend and re-resolve from MISAM_SIMD / detection. */
void resetBackendFromEnv();

// ---------------------------------------------------------------------
// Kernels. All operate on 64-bit words; callers static_assert their
// element types down to these.
// ---------------------------------------------------------------------

/** acc[i] |= src[i] for i < words. */
void orInto(std::uint64_t *acc, const std::uint64_t *src,
            std::size_t words);

/** Total popcount of words[0..n), zeroing the array as it goes. */
std::uint64_t popcountAndClear(std::uint64_t *words, std::size_t n);

/**
 * The four-lane fingerprint bulk rounds (sparse/fingerprint.cc): absorb
 * floor(n/4)*4 words into lanes[0..3] using the xor-rotl31-multiply
 * round, word i going to lane i%4. Returns the number of words
 * consumed; the caller folds the tail through lane 0 itself. The vector
 * variants reproduce the scalar lane arithmetic bit-for-bit.
 */
std::size_t fingerprintBulk(std::uint64_t lanes[4],
                            const std::uint64_t *words, std::size_t n);

/** dst[i] = src[2i] | src[2i+1] << 32 for i < pairs. */
void packPairsU32(std::uint64_t *dst, const std::uint32_t *src,
                  std::size_t pairs);

/**
 * Design-4 job weights: dst[i] = meta + ceil(row_nnz[i] / eff_lanes),
 * the division and ceil performed element-wise in IEEE f64 exactly as
 * the scalar loop writes them (row_nnz values must stay below 2^52,
 * which nnz counts always do).
 */
void ceilDivWeights(std::uint64_t *dst, const std::uint64_t *row_nnz,
                    std::size_t n, double eff_lanes, std::uint64_t meta);

/** Reduction of peScheduleFold over an accumulator array. */
struct PeFold
{
    std::uint64_t schedule_length = 0; ///< max over PEs.
    std::uint64_t total_elements = 0;  ///< sum of field 0.
    std::uint64_t busy_cycles = 0;     ///< sum of field 1.
};

/**
 * Fold `n` PE accumulator records laid out as 4 contiguous u64 fields
 * [total_elements, total_work, max_row_count, rows_at_max] (the layout
 * of sim::PeAccumulator). Per record the schedule length is
 * max(total_work, (max_row_count-1)*dep + rows_at_max), zero when
 * total_work is zero; the fold takes the max of those and the sums of
 * the first two fields. `dep` and every max_row_count must fit 32 bits.
 */
PeFold peScheduleFold(const std::uint64_t *acc4, std::size_t n,
                      std::uint64_t dep);

/**
 * Expand an occupancy bitmap into ascending bit positions: for each set
 * bit b of words[0..n), append `base + w*64 + bit` to dst (as u32) and
 * clear the word. Returns the number of positions written. dst must
 * have room for the total popcount. The numeric-SpGEMM emit uses this
 * to produce column-ordered output rows without sorting.
 */
std::size_t expandSetBits(std::uint64_t *words, std::size_t n,
                          std::uint32_t base, std::uint32_t *dst);

// ---------------------------------------------------------------------
// Observability. Coarse trip counters: bumped once per kernel call (or
// once per consumer call for composite paths), never per element.
// ---------------------------------------------------------------------

/** Process-lifetime totals of the SIMD-layer trip counters. */
struct SimdCounters
{
    std::uint64_t bitmap_rows = 0;        ///< Bitmap symbolic A-rows.
    std::uint64_t fingerprint_blocks = 0; ///< fingerprintBulk calls.
    std::uint64_t weight_builds = 0;      ///< ceilDivWeights calls.
    std::uint64_t pe_folds = 0;           ///< peScheduleFold calls.
    std::uint64_t csc_blocked = 0;        ///< Cache-blocked csrToCsc runs.
    std::uint64_t expand_rows = 0;        ///< Numeric bitmap-emit rows.
};

/** Snapshot of the process-wide SIMD counters. */
SimdCounters simdCounters();

/** Consumer-side bumps for composite paths (see SimdCounters). */
void noteBitmapRows(std::uint64_t rows);
void noteBlockedCsc();
void noteExpandRows(std::uint64_t rows);

/**
 * Mirror future SIMD-layer events into `registry`: the `simd.backend`
 * gauge (Backend ordinal) plus the `simd.*` trip counters
 * (docs/OBSERVABILITY.md). nullptr detaches. Same contract as
 * setSimKernelMetrics: resolve-at-attach, mirroring starts at zero, and
 * the golden-trace registries never attach it.
 */
void setSimdMetrics(MetricsRegistry *registry);

/** RAII attach/detach for setSimdMetrics. */
class ScopedSimdMetrics
{
  public:
    explicit ScopedSimdMetrics(MetricsRegistry *registry)
    {
        setSimdMetrics(registry);
    }

    ~ScopedSimdMetrics() { setSimdMetrics(nullptr); }

    ScopedSimdMetrics(const ScopedSimdMetrics &) = delete;
    ScopedSimdMetrics &operator=(const ScopedSimdMetrics &) = delete;
};

} // namespace simd
} // namespace misam

#endif // MISAM_UTIL_SIMD_HH
