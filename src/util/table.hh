/**
 * @file
 * ASCII table rendering for benchmark harness output.
 *
 * Every bench binary prints the rows of the paper table/figure it
 * regenerates; TextTable keeps that output aligned and diff-friendly.
 */

#ifndef MISAM_UTIL_TABLE_HH
#define MISAM_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace misam {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 * TextTable t({"Design", "Cycles", "Speedup"});
 * t.addRow({"D1", "1024", "1.31x"});
 * std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    /** Construct with the header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render the table with a separator under the header. */
    std::string render() const;

    /** Number of data rows added. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision (%.*f). */
std::string formatDouble(double value, int precision = 2);

/** Format a value as a multiplier string, e.g. "3.23x". */
std::string formatSpeedup(double value, int precision = 2);

/** Format a double in scientific notation, e.g. "9.3e-05". */
std::string formatScientific(double value, int precision = 1);

/** Format an integer with thousands separators, e.g. "1,930,655". */
std::string formatCount(std::uint64_t value);

/** Format a fraction as a percentage string, e.g. 0.3320 -> "33.20%". */
std::string formatPercent(double fraction, int precision = 2);

/** Render a single-line horizontal bar of `width` cells filled to `frac`. */
std::string formatBar(double frac, int width = 40);

} // namespace misam

#endif // MISAM_UTIL_TABLE_HH
