/**
 * @file
 * Coordinate-format (COO) sparse matrix.
 *
 * COO is the interchange format of the library: generators emit it, Matrix
 * Market I/O reads and writes it, and conversions produce the compressed
 * formats the kernels and the accelerator models consume. Design 4 of the
 * Misam architecture also streams matrix B in a packed 64-bit COO encoding,
 * which the bandwidth model accounts for (8 packed entries per 512-bit HBM
 * word).
 */

#ifndef MISAM_SPARSE_COO_HH
#define MISAM_SPARSE_COO_HH

#include <vector>

#include "sparse/types.hh"

namespace misam {

/** A single nonzero entry of a COO matrix. */
struct CooEntry
{
    Index row;
    Index col;
    Value value;

    /** Row-major ordering used by sortAndCombine. */
    friend bool
    operator<(const CooEntry &a, const CooEntry &b)
    {
        if (a.row != b.row)
            return a.row < b.row;
        return a.col < b.col;
    }
};

/**
 * Sparse matrix in coordinate format.
 *
 * Entries may be appended in any order; call sortAndCombine() to obtain the
 * canonical row-major, duplicate-free form required by the conversions.
 */
class CooMatrix
{
  public:
    CooMatrix() = default;

    /** Construct an empty rows x cols matrix. */
    CooMatrix(Index rows, Index cols) : rows_(rows), cols_(cols) {}

    /** Number of rows. */
    Index rows() const { return rows_; }

    /** Number of columns. */
    Index cols() const { return cols_; }

    /** Number of stored entries (duplicates count until combined). */
    Offset nnz() const { return entries_.size(); }

    /** Fraction of positions that are stored nonzeros. */
    double density() const;

    /** Append an entry; indices must be in range (panics otherwise). */
    void addEntry(Index row, Index col, Value value);

    /** Reserve capacity for n entries. */
    void reserve(Offset n) { entries_.reserve(n); }

    /** Read-only access to the entry list. */
    const std::vector<CooEntry> &entries() const { return entries_; }

    /** Mutable access (used by conversions and I/O). */
    std::vector<CooEntry> &entries() { return entries_; }

    /**
     * Sort entries row-major and sum duplicates. Entries whose combined
     * value is exactly zero are kept (explicit zeros are legal in Matrix
     * Market files and some pruning flows produce them).
     */
    void sortAndCombine();

    /** True if entries are sorted row-major with no duplicate positions. */
    bool isCanonical() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<CooEntry> entries_;
};

} // namespace misam

#endif // MISAM_SPARSE_COO_HH
