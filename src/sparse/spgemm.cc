#include "sparse/spgemm.hh"

#include <algorithm>

#include "sparse/convert.hh"
#include "util/logging.hh"

namespace misam {

namespace {

void
checkDims(Index a_cols, Index b_rows)
{
    if (a_cols != b_rows)
        fatal("spgemm: dimension mismatch, A has ", a_cols,
              " columns but B has ", b_rows, " rows");
}

/**
 * Dense sparse-accumulator (SPA) sized to the output column count, reused
 * across rows. Tracks touched positions so reset is O(row nnz).
 */
class SparseAccumulator
{
  public:
    explicit SparseAccumulator(Index cols)
        : values_(cols, 0.0), occupied_(cols, false)
    {
    }

    void
    add(Index col, Value v)
    {
        if (!occupied_[col]) {
            occupied_[col] = true;
            touched_.push_back(col);
        }
        values_[col] += v;
    }

    /** Flush the accumulated row (sorted by column) and reset. */
    void
    flush(std::vector<Index> &col_idx, std::vector<Value> &values)
    {
        std::sort(touched_.begin(), touched_.end());
        for (Index c : touched_) {
            col_idx.push_back(c);
            values.push_back(values_[c]);
            values_[c] = 0.0;
            occupied_[c] = false;
        }
        touched_.clear();
    }

  private:
    std::vector<Value> values_;
    std::vector<bool> occupied_;
    std::vector<Index> touched_;
};

} // namespace

const char *
dataflowName(SpgemmDataflow dataflow)
{
    switch (dataflow) {
      case SpgemmDataflow::InnerProduct:
        return "IP";
      case SpgemmDataflow::OuterProduct:
        return "OP";
      case SpgemmDataflow::RowWise:
        return "RW";
    }
    return "?";
}

CsrMatrix
spgemmRowWise(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index rows = a.rows();
    const Index cols = b.cols();

    std::vector<Offset> row_ptr(rows + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;
    SparseAccumulator spa(cols);

    for (Index i = 0; i < rows; ++i) {
        auto a_cols = a.rowCols(i);
        auto a_vals = a.rowVals(i);
        for (std::size_t ka = 0; ka < a_cols.size(); ++ka) {
            const Index k = a_cols[ka];
            const Value a_val = a_vals[ka];
            auto b_cols = b.rowCols(k);
            auto b_vals = b.rowVals(k);
            for (std::size_t kb = 0; kb < b_cols.size(); ++kb)
                spa.add(b_cols[kb], a_val * b_vals[kb]);
        }
        spa.flush(col_idx, values);
        row_ptr[i + 1] = values.size();
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CsrMatrix
spgemmInnerProduct(const CsrMatrix &a, const CscMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index rows = a.rows();
    const Index cols = b.cols();

    std::vector<Offset> row_ptr(rows + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;

    for (Index i = 0; i < rows; ++i) {
        auto a_cols = a.rowCols(i);
        auto a_vals = a.rowVals(i);
        if (a_cols.empty()) {
            row_ptr[i + 1] = values.size();
            continue;
        }
        for (Index j = 0; j < cols; ++j) {
            auto b_rows = b.colRows(j);
            auto b_vals = b.colVals(j);
            // Two-pointer intersection of A(i,:) indices with B(:,j).
            std::size_t pa = 0;
            std::size_t pb = 0;
            Value dot = 0.0;
            bool hit = false;
            while (pa < a_cols.size() && pb < b_rows.size()) {
                if (a_cols[pa] < b_rows[pb]) {
                    ++pa;
                } else if (a_cols[pa] > b_rows[pb]) {
                    ++pb;
                } else {
                    dot += a_vals[pa] * b_vals[pb];
                    hit = true;
                    ++pa;
                    ++pb;
                }
            }
            if (hit) {
                col_idx.push_back(j);
                values.push_back(dot);
            }
        }
        row_ptr[i + 1] = values.size();
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CsrMatrix
spgemmOuterProduct(const CscMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index rows = a.rows();
    const Index cols = b.cols();

    // Accumulate all rank-1 partial products into per-output-row COO-style
    // lists, then merge. This mirrors the format/merge cost structure of
    // outer-product accelerators (partial matrices then merge phase).
    CooMatrix partials(rows, cols);
    for (Index k = 0; k < a.cols(); ++k) {
        auto a_rows = a.colRows(k);
        auto a_vals = a.colVals(k);
        auto b_cols = b.rowCols(k);
        auto b_vals = b.rowVals(k);
        for (std::size_t pa = 0; pa < a_rows.size(); ++pa)
            for (std::size_t pb = 0; pb < b_cols.size(); ++pb)
                partials.addEntry(a_rows[pa], b_cols[pb],
                                  a_vals[pa] * b_vals[pb]);
    }
    return cooToCsr(std::move(partials));
}

CsrMatrix
spgemm(const CsrMatrix &a, const CsrMatrix &b, SpgemmDataflow dataflow)
{
    switch (dataflow) {
      case SpgemmDataflow::RowWise:
        return spgemmRowWise(a, b);
      case SpgemmDataflow::InnerProduct:
        return spgemmInnerProduct(a, csrToCsc(b));
      case SpgemmDataflow::OuterProduct:
        return spgemmOuterProduct(csrToCsc(a), b);
    }
    panic("spgemm: unknown dataflow");
}

Offset
spgemmMultiplyCount(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    // multiplies = sum_i sum_{k in A(i,:)} nnz(B(k,:)).
    Offset total = 0;
    for (Index i = 0; i < a.rows(); ++i)
        for (Index k : a.rowCols(i))
            total += b.rowNnz(k);
    return total;
}

Offset
spgemmOutputNnz(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index cols = b.cols();
    std::vector<Index> mark(cols, 0);
    Index stamp = 0;
    Offset total = 0;
    for (Index i = 0; i < a.rows(); ++i) {
        ++stamp;
        Offset row_nnz = 0;
        for (Index k : a.rowCols(i)) {
            for (Index j : b.rowCols(k)) {
                if (mark[j] != stamp) {
                    mark[j] = stamp;
                    ++row_nnz;
                }
            }
        }
        total += row_nnz;
    }
    return total;
}

double
spgemmCompressionFactor(const CsrMatrix &a, const CsrMatrix &b)
{
    const SymbolicStats sym = spgemmSymbolic(a, b);
    if (sym.multiplies == 0)
        return 1.0;
    return static_cast<double>(sym.output_nnz) /
           static_cast<double>(sym.multiplies);
}

SymbolicStats
spgemmSymbolic(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    SymbolicStats sym;
    sym.b_row_nnz.resize(b.rows());
    for (Index k = 0; k < b.rows(); ++k)
        sym.b_row_nnz[k] = b.rowNnz(k);

    // Fused multiply-count + symbolic-output pass: per output row, the
    // marker array unions the B rows selected by A(i,:) while the
    // cached B row lengths accumulate the effectual flops. Identical
    // values to spgemmMultiplyCount/spgemmOutputNnz by construction.
    std::vector<Index> mark(b.cols(), 0);
    Index stamp = 0;
    for (Index i = 0; i < a.rows(); ++i) {
        ++stamp;
        Offset row_nnz = 0;
        for (Index k : a.rowCols(i)) {
            sym.multiplies += sym.b_row_nnz[k];
            for (Index j : b.rowCols(k)) {
                if (mark[j] != stamp) {
                    mark[j] = stamp;
                    ++row_nnz;
                }
            }
        }
        sym.output_nnz += row_nnz;
    }
    return sym;
}

} // namespace misam
