#include "sparse/spgemm.hh"

#include <algorithm>
#include <cstdint>

#include "sparse/convert.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace misam {

namespace {

void
checkDims(Index a_cols, Index b_rows)
{
    if (a_cols != b_rows)
        fatal("spgemm: dimension mismatch, A has ", a_cols,
              " columns but B has ", b_rows, " rows");
}

/**
 * Dense sparse-accumulator (SPA) sized to the output column count, reused
 * across rows. Tracks touched positions so reset is O(row nnz).
 */
class SparseAccumulator
{
  public:
    explicit SparseAccumulator(Index cols)
        : values_(cols, 0.0), occupied_(cols, false)
    {
    }

    void
    add(Index col, Value v)
    {
        if (!occupied_[col]) {
            occupied_[col] = true;
            touched_.push_back(col);
        }
        values_[col] += v;
    }

    /** Flush the accumulated row (sorted by column) and reset. */
    void
    flush(std::vector<Index> &col_idx, std::vector<Value> &values)
    {
        std::sort(touched_.begin(), touched_.end());
        for (Index c : touched_) {
            col_idx.push_back(c);
            values.push_back(values_[c]);
            values_[c] = 0.0;
            occupied_[c] = false;
        }
        touched_.clear();
    }

  private:
    std::vector<Value> values_;
    std::vector<bool> occupied_;
    std::vector<Index> touched_;
};

} // namespace

const char *
dataflowName(SpgemmDataflow dataflow)
{
    switch (dataflow) {
      case SpgemmDataflow::InnerProduct:
        return "IP";
      case SpgemmDataflow::OuterProduct:
        return "OP";
      case SpgemmDataflow::RowWise:
        return "RW";
    }
    return "?";
}

CsrMatrix
spgemmRowWise(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index rows = a.rows();
    const Index cols = b.cols();

    std::vector<Offset> row_ptr(rows + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;
    SparseAccumulator spa(cols);

    for (Index i = 0; i < rows; ++i) {
        auto a_cols = a.rowCols(i);
        auto a_vals = a.rowVals(i);
        for (std::size_t ka = 0; ka < a_cols.size(); ++ka) {
            const Index k = a_cols[ka];
            const Value a_val = a_vals[ka];
            auto b_cols = b.rowCols(k);
            auto b_vals = b.rowVals(k);
            for (std::size_t kb = 0; kb < b_cols.size(); ++kb)
                spa.add(b_cols[kb], a_val * b_vals[kb]);
        }
        spa.flush(col_idx, values);
        row_ptr[i + 1] = values.size();
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CsrMatrix
spgemmInnerProduct(const CsrMatrix &a, const CscMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index rows = a.rows();
    const Index cols = b.cols();

    std::vector<Offset> row_ptr(rows + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;

    for (Index i = 0; i < rows; ++i) {
        auto a_cols = a.rowCols(i);
        auto a_vals = a.rowVals(i);
        if (a_cols.empty()) {
            row_ptr[i + 1] = values.size();
            continue;
        }
        for (Index j = 0; j < cols; ++j) {
            auto b_rows = b.colRows(j);
            auto b_vals = b.colVals(j);
            // Two-pointer intersection of A(i,:) indices with B(:,j).
            std::size_t pa = 0;
            std::size_t pb = 0;
            Value dot = 0.0;
            bool hit = false;
            while (pa < a_cols.size() && pb < b_rows.size()) {
                if (a_cols[pa] < b_rows[pb]) {
                    ++pa;
                } else if (a_cols[pa] > b_rows[pb]) {
                    ++pb;
                } else {
                    dot += a_vals[pa] * b_vals[pb];
                    hit = true;
                    ++pa;
                    ++pb;
                }
            }
            if (hit) {
                col_idx.push_back(j);
                values.push_back(dot);
            }
        }
        row_ptr[i + 1] = values.size();
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CsrMatrix
spgemmOuterProduct(const CscMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index rows = a.rows();
    const Index cols = b.cols();

    // Accumulate all rank-1 partial products into per-output-row COO-style
    // lists, then merge. This mirrors the format/merge cost structure of
    // outer-product accelerators (partial matrices then merge phase).
    CooMatrix partials(rows, cols);
    for (Index k = 0; k < a.cols(); ++k) {
        auto a_rows = a.colRows(k);
        auto a_vals = a.colVals(k);
        auto b_cols = b.rowCols(k);
        auto b_vals = b.rowVals(k);
        for (std::size_t pa = 0; pa < a_rows.size(); ++pa)
            for (std::size_t pb = 0; pb < b_cols.size(); ++pb)
                partials.addEntry(a_rows[pa], b_cols[pb],
                                  a_vals[pa] * b_vals[pb]);
    }
    return cooToCsr(std::move(partials));
}

CsrMatrix
spgemm(const CsrMatrix &a, const CsrMatrix &b, SpgemmDataflow dataflow)
{
    switch (dataflow) {
      case SpgemmDataflow::RowWise:
        return spgemmRowWise(a, b);
      case SpgemmDataflow::InnerProduct:
        return spgemmInnerProduct(a, csrToCsc(b));
      case SpgemmDataflow::OuterProduct:
        return spgemmOuterProduct(csrToCsc(a), b);
    }
    panic("spgemm: unknown dataflow");
}

Offset
spgemmMultiplyCount(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    // multiplies = sum_i sum_{k in A(i,:)} nnz(B(k,:)).
    Offset total = 0;
    for (Index i = 0; i < a.rows(); ++i)
        for (Index k : a.rowCols(i))
            total += b.rowNnz(k);
    return total;
}

Offset
spgemmOutputNnz(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    const Index cols = b.cols();
    std::vector<Index> mark(cols, 0);
    Index stamp = 0;
    Offset total = 0;
    for (Index i = 0; i < a.rows(); ++i) {
        ++stamp;
        Offset row_nnz = 0;
        for (Index k : a.rowCols(i)) {
            for (Index j : b.rowCols(k)) {
                if (mark[j] != stamp) {
                    mark[j] = stamp;
                    ++row_nnz;
                }
            }
        }
        total += row_nnz;
    }
    return total;
}

double
spgemmCompressionFactor(const CsrMatrix &a, const CsrMatrix &b)
{
    const SymbolicStats sym = spgemmSymbolic(a, b);
    if (sym.multiplies == 0)
        return 1.0;
    return static_cast<double>(sym.output_nnz) /
           static_cast<double>(sym.multiplies);
}

namespace {

/**
 * Bitmap row-merge variant of the fused symbolic pass: each B row
 * becomes a column-occupancy bitmap, each output row ORs the bitmaps
 * its A nonzeros select (simd::orInto) and popcounts the union. Wins
 * when B rows average at least one set bit per occupancy word; the
 * caller gates on that, so hypersparse B stays on the marker path.
 */
void
symbolicBitmap(const CsrMatrix &a, const CsrMatrix &b,
               std::size_t words, SymbolicStats &sym)
{
    const Offset *b_rp = b.rowPtr().data();
    const Index *b_ci = b.colIdx().data();
    std::vector<std::uint64_t> bitmaps(words * b.rows(), 0);
    for (Index k = 0; k < b.rows(); ++k) {
        std::uint64_t *bits = bitmaps.data() + words * k;
        for (Offset q = b_rp[k]; q < b_rp[k + 1]; ++q) {
            const Index j = b_ci[q];
            bits[j >> 6] |= std::uint64_t{1} << (j & 63);
        }
    }

    const Offset *a_rp = a.rowPtr().data();
    const Index *a_ci = a.colIdx().data();
    const Offset *row_len = sym.b_row_nnz.data();
    std::vector<std::uint64_t> acc(words, 0);
    for (Index i = 0; i < a.rows(); ++i) {
        const Offset lo = a_rp[i];
        const Offset hi = a_rp[i + 1];
        if (lo == hi)
            continue;
        if (hi - lo == 1) {
            // One selected B row: its distinct columns are its nnz.
            const Index k = a_ci[lo];
            sym.multiplies += row_len[k];
            sym.output_nnz += row_len[k];
            continue;
        }
        for (Offset p = lo; p < hi; ++p) {
            const Index k = a_ci[p];
            sym.multiplies += row_len[k];
            simd::orInto(acc.data(), bitmaps.data() + words * k,
                         words);
        }
        sym.output_nnz += simd::popcountAndClear(acc.data(), words);
    }
    simd::noteBitmapRows(a.rows());
}

/** Marker-array variant (branchless stamps); any backend, any shape. */
void
symbolicMarker(const CsrMatrix &a, const CsrMatrix &b,
               SymbolicStats &sym)
{
    const Offset *a_rp = a.rowPtr().data();
    const Index *a_ci = a.colIdx().data();
    const Offset *b_rp = b.rowPtr().data();
    const Index *b_ci = b.colIdx().data();
    const Offset *row_len = sym.b_row_nnz.data();
    std::vector<Index> mark(b.cols(), 0);
    Index stamp = 0;
    for (Index i = 0; i < a.rows(); ++i) {
        ++stamp;
        Offset row_nnz = 0;
        for (Offset p = a_rp[i]; p < a_rp[i + 1]; ++p) {
            const Index k = a_ci[p];
            sym.multiplies += row_len[k];
            for (Offset q = b_rp[k]; q < b_rp[k + 1]; ++q) {
                const Index j = b_ci[q];
                row_nnz += static_cast<Offset>(mark[j] != stamp);
                mark[j] = stamp;
            }
        }
        sym.output_nnz += row_nnz;
    }
}

} // namespace

SymbolicStats
spgemmSymbolic(const CsrMatrix &a, const CsrMatrix &b)
{
    checkDims(a.cols(), b.rows());
    SymbolicStats sym;
    sym.b_row_nnz.resize(b.rows());
    const Offset *b_rp = b.rowPtr().data();
    for (Index k = 0; k < b.rows(); ++k)
        sym.b_row_nnz[k] = b_rp[k + 1] - b_rp[k];

    // Degenerate operands (0 rows / 0 cols / 0 nnz) take no merge pass
    // at all, so every backend trivially agrees on them.
    if (a.rows() == 0 || a.nnz() == 0 || b.cols() == 0)
        return sym;

    // Fused multiply-count + symbolic-output pass. Identical values to
    // spgemmMultiplyCount/spgemmOutputNnz by construction, from either
    // variant: the path choice depends only on the operand shape (never
    // on backend or thread count), and both variants count the same
    // distinct-column unions.
    const std::size_t words =
        (static_cast<std::size_t>(b.cols()) + 63) / 64;
    constexpr std::size_t kMaxBitmapWords = (64u << 20) / 8;
    const bool use_bitmap =
        b.nnz() >= static_cast<Offset>(words) * b.rows() &&
        words * b.rows() <= kMaxBitmapWords;
    if (use_bitmap)
        symbolicBitmap(a, b, words, sym);
    else
        symbolicMarker(a, b, sym);
    return sym;
}

} // namespace misam
