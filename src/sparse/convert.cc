#include "sparse/convert.hh"

#include <algorithm>

#include "util/simd.hh"

namespace misam {

CsrMatrix
cooToCsr(CooMatrix coo)
{
    coo.sortAndCombine();
    const Index rows = coo.rows();
    const Index cols = coo.cols();
    std::vector<Offset> row_ptr(rows + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;
    col_idx.reserve(coo.nnz());
    values.reserve(coo.nnz());

    for (const auto &e : coo.entries())
        ++row_ptr[e.row + 1];
    for (Index r = 0; r < rows; ++r)
        row_ptr[r + 1] += row_ptr[r];
    for (const auto &e : coo.entries()) {
        col_idx.push_back(e.col);
        values.push_back(e.value);
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CooMatrix
csrToCoo(const CsrMatrix &csr)
{
    CooMatrix coo(csr.rows(), csr.cols());
    coo.reserve(csr.nnz());
    for (Index r = 0; r < csr.rows(); ++r) {
        auto cols = csr.rowCols(r);
        auto vals = csr.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k)
            coo.addEntry(r, cols[k], vals[k]);
    }
    return coo;
}

namespace {

/** Column-count pass + inclusive scan into `col_ptr` (cols+1 zeros). */
void
countColumns(const CsrMatrix &csr, std::vector<Offset> &col_ptr)
{
    const Index *ci = csr.colIdx().data();
    const Offset nnz = csr.nnz();
    for (Offset k = 0; k < nnz; ++k)
        ++col_ptr[ci[k] + 1];
    for (Index c = 0; c < csr.cols(); ++c)
        col_ptr[c + 1] += col_ptr[c];
}

/** Single-pass cursor scatter over raw arrays (small conversions). */
CscMatrix
cscDirect(const CsrMatrix &csr)
{
    const Index rows = csr.rows();
    const Index cols = csr.cols();
    std::vector<Offset> col_ptr(cols + 1, 0);
    std::vector<Index> row_idx(csr.nnz());
    std::vector<Value> values(csr.nnz());
    countColumns(csr, col_ptr);

    std::vector<Offset> cursor(col_ptr.begin(), col_ptr.end() - 1);
    const Offset *rp = csr.rowPtr().data();
    const Index *ci = csr.colIdx().data();
    const Value *vv = csr.values().data();
    Offset *cur = cursor.data();
    Index *ri_out = row_idx.data();
    Value *v_out = values.data();
    for (Index r = 0; r < rows; ++r) {
        for (Offset k = rp[r]; k < rp[r + 1]; ++k) {
            const Offset dst = cur[ci[k]]++;
            ri_out[dst] = r;
            v_out[dst] = vv[k];
        }
    }
    // The cursor scatter preserves the (validated) CSR invariants, so
    // skip the O(nnz) re-validation on this hot path.
    return {TrustedSource{}, rows, cols, std::move(col_ptr),
            std::move(row_idx), std::move(values)};
}

/** Columns per cache block; power of two for the shift in the hot loop. */
constexpr Index kCscBlockCols = 4096;
constexpr Index kCscBlockShift = 12;

/** Column count from which the blocked route is taken. */
constexpr Index kCscBlockedMinCols = 8192;

/**
 * Cache-blocked conversion for wide matrices: nonzeros are first staged
 * contiguously per column block (sequential writes, one stream per
 * block), then each block scatters into a destination window small
 * enough to stay cache-resident. Staging preserves CSR traversal
 * order, so per-column row order — and therefore every output byte —
 * matches the direct kernel.
 */
CscMatrix
cscBlocked(const CsrMatrix &csr)
{
    const Index rows = csr.rows();
    const Index cols = csr.cols();
    std::vector<Offset> col_ptr(cols + 1, 0);
    std::vector<Index> row_idx(csr.nnz());
    std::vector<Value> values(csr.nnz());
    countColumns(csr, col_ptr);

    struct Rec
    {
        Index col;
        Index row;
        Value val;
    };
    const Index nblocks =
        (cols + kCscBlockCols - 1) / kCscBlockCols;
    std::vector<Offset> block_start(nblocks + 1);
    for (Index bi = 0; bi <= nblocks; ++bi)
        block_start[bi] =
            col_ptr[std::min<Index>(bi * kCscBlockCols, cols)];

    std::vector<Rec> stage(csr.nnz());
    {
        std::vector<Offset> bcur(block_start.begin(),
                                 block_start.end() - 1);
        const Offset *rp = csr.rowPtr().data();
        const Index *ci = csr.colIdx().data();
        const Value *vv = csr.values().data();
        for (Index r = 0; r < rows; ++r) {
            for (Offset k = rp[r]; k < rp[r + 1]; ++k) {
                const Index c = ci[k];
                stage[bcur[c >> kCscBlockShift]++] = {c, r, vv[k]};
            }
        }
    }

    std::vector<Offset> cursor(col_ptr.begin(), col_ptr.end() - 1);
    Offset *cur = cursor.data();
    Index *ri_out = row_idx.data();
    Value *v_out = values.data();
    for (Index bi = 0; bi < nblocks; ++bi) {
        for (Offset s = block_start[bi]; s < block_start[bi + 1];
             ++s) {
            const Rec &e = stage[s];
            const Offset dst = cur[e.col]++;
            ri_out[dst] = e.row;
            v_out[dst] = e.val;
        }
    }
    simd::noteBlockedCsc();
    return {TrustedSource{}, rows, cols, std::move(col_ptr),
            std::move(row_idx), std::move(values)};
}

} // namespace

CscMatrix
csrToCsc(const CsrMatrix &csr)
{
    // Degenerate shapes (0 rows / 0 cols / 0 nnz) reduce to the count
    // pass over an empty index array — no kernel touches a span.
    if (csr.nnz() == 0) {
        return {csr.rows(), csr.cols(),
                std::vector<Offset>(csr.cols() + 1, 0), {}, {}};
    }
    if (csr.cols() >= kCscBlockedMinCols &&
        csr.nnz() >= static_cast<Offset>(csr.cols()))
        return cscBlocked(csr);
    return cscDirect(csr);
}

CscMatrix
csrToCscReference(const CsrMatrix &csr)
{
    const Index rows = csr.rows();
    const Index cols = csr.cols();
    std::vector<Offset> col_ptr(cols + 1, 0);
    std::vector<Index> row_idx(csr.nnz());
    std::vector<Value> values(csr.nnz());

    for (Index c : csr.colIdx())
        ++col_ptr[c + 1];
    for (Index c = 0; c < cols; ++c)
        col_ptr[c + 1] += col_ptr[c];

    std::vector<Offset> cursor(col_ptr.begin(), col_ptr.end() - 1);
    for (Index r = 0; r < rows; ++r) {
        auto row_cols = csr.rowCols(r);
        auto row_vals = csr.rowVals(r);
        for (std::size_t k = 0; k < row_cols.size(); ++k) {
            const Offset dst = cursor[row_cols[k]]++;
            row_idx[dst] = r;
            values[dst] = row_vals[k];
        }
    }
    return {rows, cols, std::move(col_ptr), std::move(row_idx),
            std::move(values)};
}

CsrMatrix
cscToCsr(const CscMatrix &csc)
{
    const Index rows = csc.rows();
    const Index cols = csc.cols();
    std::vector<Offset> row_ptr(rows + 1, 0);
    std::vector<Index> col_idx(csc.nnz());
    std::vector<Value> values(csc.nnz());

    for (Index r : csc.rowIdx())
        ++row_ptr[r + 1];
    for (Index r = 0; r < rows; ++r)
        row_ptr[r + 1] += row_ptr[r];

    std::vector<Offset> cursor(row_ptr.begin(), row_ptr.end() - 1);
    for (Index c = 0; c < cols; ++c) {
        auto rows_in_col = csc.colRows(c);
        auto vals_in_col = csc.colVals(c);
        for (std::size_t k = 0; k < rows_in_col.size(); ++k) {
            const Offset dst = cursor[rows_in_col[k]]++;
            col_idx[dst] = c;
            values[dst] = vals_in_col[k];
        }
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CsrMatrix
transpose(const CsrMatrix &csr)
{
    const CscMatrix csc = csrToCsc(csr);
    // A CSC view of A is structurally a CSR view of A^T.
    return {csc.cols(), csc.rows(), csc.colPtr(), csc.rowIdx(),
            csc.values()};
}

DenseMatrix
csrToDense(const CsrMatrix &csr)
{
    DenseMatrix dense(csr.rows(), csr.cols());
    for (Index r = 0; r < csr.rows(); ++r) {
        auto cols = csr.rowCols(r);
        auto vals = csr.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k)
            dense.at(r, cols[k]) = vals[k];
    }
    return dense;
}

CsrMatrix
sliceRows(const CsrMatrix &m, Index row_lo, Index row_hi)
{
    if (row_lo > row_hi || row_hi > m.rows())
        panic("sliceRows: bad range [", row_lo, ",", row_hi, ") for ",
              m.rows(), " rows");
    const Index rows = row_hi - row_lo;
    std::vector<Offset> row_ptr(rows + 1);
    const Offset base = m.rowPtr()[row_lo];
    for (Index r = 0; r <= rows; ++r)
        row_ptr[r] = m.rowPtr()[row_lo + r] - base;
    std::vector<Index> col_idx(m.colIdx().begin() + base,
                               m.colIdx().begin() + m.rowPtr()[row_hi]);
    std::vector<Value> values(m.values().begin() + base,
                              m.values().begin() + m.rowPtr()[row_hi]);
    return {rows, m.cols(), std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

CsrMatrix
denseToCsr(const DenseMatrix &dense)
{
    CooMatrix coo(dense.rows(), dense.cols());
    for (Index r = 0; r < dense.rows(); ++r)
        for (Index c = 0; c < dense.cols(); ++c)
            if (dense.at(r, c) != 0.0)
                coo.addEntry(r, c, dense.at(r, c));
    return cooToCsr(std::move(coo));
}

} // namespace misam
