#include "sparse/csc.hh"

#include "util/logging.hh"

namespace misam {

CscMatrix::CscMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), col_ptr_(cols + 1, 0)
{
}

CscMatrix::CscMatrix(Index rows, Index cols, std::vector<Offset> col_ptr,
                     std::vector<Index> row_idx, std::vector<Value> values)
    : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)), values_(std::move(values))
{
    validate();
}

CscMatrix::CscMatrix(TrustedSource, Index rows, Index cols,
                     std::vector<Offset> col_ptr,
                     std::vector<Index> row_idx,
                     std::vector<Value> values)
    : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)), values_(std::move(values))
{
#ifndef NDEBUG
    validate();
#endif
}

std::span<const Index>
CscMatrix::colRows(Index c) const
{
    return {row_idx_.data() + col_ptr_[c],
            static_cast<std::size_t>(colNnz(c))};
}

std::span<const Value>
CscMatrix::colVals(Index c) const
{
    return {values_.data() + col_ptr_[c],
            static_cast<std::size_t>(colNnz(c))};
}

void
CscMatrix::validate() const
{
    if (col_ptr_.size() != static_cast<std::size_t>(cols_) + 1)
        panic("CscMatrix: colPtr size ", col_ptr_.size(), " != cols+1 (",
              cols_ + 1, ")");
    if (col_ptr_.front() != 0)
        panic("CscMatrix: colPtr[0] != 0");
    if (col_ptr_.back() != values_.size())
        panic("CscMatrix: colPtr back ", col_ptr_.back(), " != nnz ",
              values_.size());
    if (row_idx_.size() != values_.size())
        panic("CscMatrix: rowIdx/values size mismatch");
    for (Index c = 0; c < cols_; ++c) {
        if (col_ptr_[c] > col_ptr_[c + 1])
            panic("CscMatrix: colPtr not monotone at column ", c);
        for (Offset k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
            if (row_idx_[k] >= rows_)
                panic("CscMatrix: row ", row_idx_[k],
                      " out of range in column ", c);
            if (k > col_ptr_[c] && row_idx_[k - 1] >= row_idx_[k])
                panic("CscMatrix: rows not strictly increasing in column ",
                      c);
        }
    }
}

} // namespace misam
