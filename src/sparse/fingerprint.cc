#include "sparse/fingerprint.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/simd.hh"

namespace misam {

namespace {

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

/**
 * Cheap per-word round for the bulk path. No finalizer — avalanche is
 * deferred to the lane fold / digest, which is what makes this ~4x
 * cheaper than mix() per word.
 */
std::uint64_t
bulkRound(std::uint64_t lane, std::uint64_t word)
{
    return rotl64(lane ^ (word * 0x9e3779b97f4a7c15ULL), 31) *
           0xc2b2ae3d27d4eb4fULL;
}

// Domain separators between the matrix sections, so e.g. a word moving
// from the end of col_idx to the start of values changes the digest.
constexpr std::uint64_t kTagShape = 0x5368617065ULL;   // "Shape"
constexpr std::uint64_t kTagRowPtr = 0x526f77507472ULL; // "RowPtr"
constexpr std::uint64_t kTagColIdx = 0x436f6c496478ULL; // "ColIdx"
constexpr std::uint64_t kTagValues = 0x56616c756573ULL; // "Values"

/** Stack-buffer size (words) for converting col_idx/values runs. */
constexpr std::size_t kChunkWords = 512;

} // namespace

void
FingerprintHasher::mix(std::uint64_t word)
{
    h1_ = mix64(h1_ ^ (word * 0x9e3779b97f4a7c15ULL));
    h2_ = mix64(rotl64(h2_, 29) + (word * 0xc2b2ae3d27d4eb4fULL));
    ++len_;
}

// misam-lint: hot-path begin -- the bulk rounds stream every rowPtr/colIdx/values word of an unfingerprinted matrix; stack chunk buffers only
void
FingerprintHasher::mixRange(const std::uint64_t *words, std::size_t n)
{
    // Four independent lanes seeded from the running state: the
    // multiply chains of consecutive words overlap instead of
    // serializing, which is where the throughput comes from. The
    // grouped rounds run through simd::fingerprintBulk, whose vector
    // variants reproduce bulkRound's lane math bit-for-bit.
    std::uint64_t lanes[4] = {
        h1_ ^ 0x243f6a8885a308d3ULL,
        h2_ + 0x13198a2e03707344ULL,
        rotl64(h1_, 17) + 0xa4093822299f31d0ULL,
        rotl64(h2_, 41) ^ 0x082efa98ec4e6c89ULL,
    };
    std::size_t i = simd::fingerprintBulk(lanes, words, n);
    for (; i < n; ++i)
        lanes[0] = bulkRound(lanes[0], words[i]);
    // Fold the lanes (and the run length, so runs of different word
    // counts never alias) back into the running state through the
    // full-avalanche path.
    mix(lanes[0]);
    mix(lanes[1]);
    mix(lanes[2]);
    mix(lanes[3]);
    mix(n);
}

Fingerprint128
FingerprintHasher::digest() const
{
    const std::uint64_t a = mix64(h1_ + len_ * 0xff51afd7ed558ccdULL);
    const std::uint64_t b = mix64(h2_ ^ rotl64(a, 31));
    return {a, b};
}

Fingerprint128
fingerprintMatrix(const CsrMatrix &m)
{
    // The matrix is immutable after construction, so the digest is
    // memoized on the matrix itself: the fingerprint-keyed caches
    // (csc / symbolic / numeric / histogram) all key the same operand
    // and would otherwise each re-hash O(nnz) content per warm lookup.
    {
        std::uint64_t hi, lo;
        if (m.cachedFingerprint(&hi, &lo))
            return {hi, lo};
    }

    FingerprintHasher h;
    h.mix(kTagShape);
    h.mix(m.rows());
    h.mix(m.cols());
    h.mix(m.nnz());

    h.mix(kTagRowPtr);
    static_assert(sizeof(Offset) == sizeof(std::uint64_t));
    h.mixRange(m.rowPtr().data(), m.rowPtr().size());

    h.mix(kTagColIdx);
    {
        // Pack two 32-bit column indices per word. An odd trailing
        // index rides alone in the low half; the nnz word mixed above
        // disambiguates that from a packed pair with a zero high half.
        const std::vector<Index> &ci = m.colIdx();
        static_assert(sizeof(Index) == sizeof(std::uint32_t));
        std::uint64_t buf[kChunkWords];
        const std::size_t n = ci.size();
        std::size_t i = 0;
        while (i + 1 < n) {
            const std::size_t take =
                std::min(kChunkWords, (n - i) / 2);
            simd::packPairsU32(buf, ci.data() + i, take);
            h.mixRange(buf, take);
            i += 2 * take;
        }
        if (i < n) {
            const std::uint64_t tail = ci[i];
            h.mixRange(&tail, 1);
        }
    }

    h.mix(kTagValues);
    {
        const std::vector<Value> &vals = m.values();
        static_assert(sizeof(Value) == sizeof(std::uint64_t));
        std::uint64_t buf[kChunkWords];
        std::size_t i = 0;
        while (i < vals.size()) {
            const std::size_t k =
                std::min(kChunkWords, vals.size() - i);
            std::memcpy(buf, vals.data() + i,
                        k * sizeof(std::uint64_t));
            h.mixRange(buf, k);
            i += k;
        }
    }
    const Fingerprint128 fp = h.digest();
    m.storeFingerprint(fp.hi, fp.lo);
    return fp;
}
// misam-lint: hot-path end

} // namespace misam
