/**
 * @file
 * Synthetic sparse-matrix generators.
 *
 * The paper's training set (6,219 matrices, sparsity 1%-99%) mixes
 * SuiteSparse structures with pruned-DNN tensors; these generators produce
 * the structural families that matter to the dataflow choice: uniform
 * random, banded (FEM/CFD-like), blocked, power-law graphs (social/p2p),
 * row-imbalanced, diagonal, and structured-pruned DNN weights.
 */

#ifndef MISAM_SPARSE_GENERATE_HH
#define MISAM_SPARSE_GENERATE_HH

#include "sparse/csr.hh"
#include "sparse/dense.hh"
#include "util/random.hh"

namespace misam {

/**
 * Uniform random matrix: each position independently nonzero with
 * probability `density`. Implemented by per-row binomial sampling of
 * distinct columns, so it is O(nnz), not O(rows*cols).
 */
CsrMatrix generateUniform(Index rows, Index cols, double density, Rng &rng);

/**
 * Banded matrix: nonzeros restricted to |i - j * rows/cols| <= bandwidth,
 * filled with probability `fill`. Models FEM/CFD stencil structures
 * (goodwin, sme3Db, msc10848 families).
 */
CsrMatrix generateBanded(Index rows, Index cols, Index bandwidth,
                         double fill, Rng &rng);

/**
 * Block-diagonal-dominant matrix: dense-ish blocks of `block_size` on the
 * diagonal (density `block_density`) plus sparse background fill. Models
 * circuit and multi-physics matrices (scircuit, gupta2 families).
 */
CsrMatrix generateBlockDiagonal(Index rows, Index cols, Index block_size,
                                double block_density,
                                double background_density, Rng &rng);

/**
 * Power-law (scale-free) square graph adjacency: out-degrees drawn from a
 * Zipf-like distribution with exponent `alpha`, targeting ~`target_nnz`
 * nonzeros. Models social/p2p/co-authorship graphs (p2p-Gnutella,
 * ca-CondMat, email-Enron families).
 */
CsrMatrix generatePowerLawGraph(Index n, Offset target_nnz, double alpha,
                                Rng &rng);

/**
 * Row-imbalanced matrix: a fraction `hot_fraction` of rows receive
 * `imbalance` times the average row length; the rest share the remainder.
 * Directly exercises the A_load_imbalance_row feature / Design 3 niche.
 */
CsrMatrix generateRowImbalanced(Index rows, Index cols, double density,
                                double hot_fraction, double imbalance,
                                Rng &rng);

/** Diagonal matrix with uniform random values. */
CsrMatrix generateDiagonal(Index n, Rng &rng);

/**
 * Structured-pruned DNN weight matrix: whole rows (granularity = rows) or
 * square blocks are kept/zeroed to reach `density`, mirroring STR-style
 * structured pruning of ResNet/VGG layers. Kept positions are fully dense
 * within their structure.
 */
CsrMatrix generateStructuredPruned(Index rows, Index cols, double density,
                                   Index block_size, Rng &rng);

/**
 * R-MAT (Graph500-style) recursive power-law graph: each edge lands in
 * a quadrant with probabilities (pa, pb, pc, 1-pa-pb-pc), recursively.
 * Produces the skewed degree distributions *and* the community-block
 * clustering real social/web graphs exhibit — a harder structural case
 * than the independent-degree power-law generator.
 */
CsrMatrix generateRmat(Index n, Offset target_nnz, double pa, double pb,
                       double pc, Rng &rng);

/** Fully dense matrix in CSR form (the D operand of MS x D workloads). */
CsrMatrix generateDenseCsr(Index rows, Index cols, Rng &rng);

/** Dense row-major matrix with uniform values in [-1, 1). */
DenseMatrix generateDense(Index rows, Index cols, Rng &rng);

} // namespace misam

#endif // MISAM_SPARSE_GENERATE_HH
