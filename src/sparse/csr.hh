/**
 * @file
 * Compressed Sparse Row (CSR) matrix.
 *
 * CSR is the workhorse format: the row-wise SpGEMM kernels, the feature
 * extractor (which derives everything from row-pointer offsets, per §3.1 of
 * the paper), and the accelerator schedulers all consume it.
 */

#ifndef MISAM_SPARSE_CSR_HH
#define MISAM_SPARSE_CSR_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sparse/types.hh"

namespace misam {

/**
 * Sparse matrix in compressed sparse row format.
 *
 * Invariants (checked by validate()):
 *  - rowPtr has rows()+1 monotonically non-decreasing entries,
 *  - rowPtr.front() == 0 and rowPtr.back() == nnz(),
 *  - column indices within each row are strictly increasing and in range.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Construct an empty (all-zero) rows x cols matrix. */
    CsrMatrix(Index rows, Index cols);

    /** Construct from raw arrays (takes ownership; validates). */
    CsrMatrix(Index rows, Index cols, std::vector<Offset> row_ptr,
              std::vector<Index> col_idx, std::vector<Value> values);

    // The memoized fingerprint slot is atomic, so the special members
    // are spelled out (csr.cc): copies carry the cached hash, a
    // moved-from matrix drops it.
    CsrMatrix(const CsrMatrix &other);
    CsrMatrix &operator=(const CsrMatrix &other);
    CsrMatrix(CsrMatrix &&other) noexcept;
    CsrMatrix &operator=(CsrMatrix &&other) noexcept;

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Offset nnz() const { return values_.size(); }

    /** Fraction of positions that are stored nonzeros. */
    double density() const;

    /** Number of nonzeros in row r. */
    Offset rowNnz(Index r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

    /** Column indices of row r. */
    std::span<const Index> rowCols(Index r) const;

    /** Values of row r. */
    std::span<const Value> rowVals(Index r) const;

    const std::vector<Offset> &rowPtr() const { return row_ptr_; }
    const std::vector<Index> &colIdx() const { return col_idx_; }
    const std::vector<Value> &values() const { return values_; }

    /** Check all structural invariants; panics with a description if bad. */
    void validate() const;

    /** Structural + value equality (the fingerprint slot is excluded). */
    bool
    operator==(const CsrMatrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               row_ptr_ == other.row_ptr_ &&
               col_idx_ == other.col_idx_ && values_ == other.values_;
    }

    /**
     * Approximate equality: same structure, values within `tol` (used by
     * tests comparing the three SpGEMM dataflows, whose accumulation orders
     * differ).
     */
    bool approxEqual(const CsrMatrix &other, double tol = 1e-9) const;

    /**
     * Read the memoized 128-bit content hash, if one has been stored.
     * The matrix is immutable after construction, so the hash is a pure
     * function of content; sparse/fingerprint.cc computes it on first
     * use and parks it here via storeFingerprint() so the fingerprint-
     * keyed caches (sim/workspace.hh) stop re-hashing O(nnz) content on
     * every warm lookup. The slot is internal plumbing: the hash
     * algorithm lives entirely in sparse/fingerprint.cc.
     */
    bool
    cachedFingerprint(std::uint64_t *hi, std::uint64_t *lo) const
    {
        if (!fp_ready_.load(std::memory_order_acquire))
            return false;
        *hi = fp_hi_.load(std::memory_order_relaxed);
        *lo = fp_lo_.load(std::memory_order_relaxed);
        return true;
    }

    /**
     * Park a computed content hash. Racing writers store identical
     * words (the hash is deterministic), so the relaxed value stores
     * under the release flag are benign.
     */
    void
    storeFingerprint(std::uint64_t hi, std::uint64_t lo) const
    {
        fp_hi_.store(hi, std::memory_order_relaxed);
        fp_lo_.store(lo, std::memory_order_relaxed);
        fp_ready_.store(true, std::memory_order_release);
    }

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Offset> row_ptr_{0};
    std::vector<Index> col_idx_;
    std::vector<Value> values_;
    mutable std::atomic<std::uint64_t> fp_hi_{0};
    mutable std::atomic<std::uint64_t> fp_lo_{0};
    mutable std::atomic<bool> fp_ready_{false};
};

} // namespace misam

#endif // MISAM_SPARSE_CSR_HH
