/**
 * @file
 * Compressed Sparse Row (CSR) matrix.
 *
 * CSR is the workhorse format: the row-wise SpGEMM kernels, the feature
 * extractor (which derives everything from row-pointer offsets, per §3.1 of
 * the paper), and the accelerator schedulers all consume it.
 */

#ifndef MISAM_SPARSE_CSR_HH
#define MISAM_SPARSE_CSR_HH

#include <span>
#include <vector>

#include "sparse/types.hh"

namespace misam {

/**
 * Sparse matrix in compressed sparse row format.
 *
 * Invariants (checked by validate()):
 *  - rowPtr has rows()+1 monotonically non-decreasing entries,
 *  - rowPtr.front() == 0 and rowPtr.back() == nnz(),
 *  - column indices within each row are strictly increasing and in range.
 */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** Construct an empty (all-zero) rows x cols matrix. */
    CsrMatrix(Index rows, Index cols);

    /** Construct from raw arrays (takes ownership; validates). */
    CsrMatrix(Index rows, Index cols, std::vector<Offset> row_ptr,
              std::vector<Index> col_idx, std::vector<Value> values);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Offset nnz() const { return values_.size(); }

    /** Fraction of positions that are stored nonzeros. */
    double density() const;

    /** Number of nonzeros in row r. */
    Offset rowNnz(Index r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

    /** Column indices of row r. */
    std::span<const Index> rowCols(Index r) const;

    /** Values of row r. */
    std::span<const Value> rowVals(Index r) const;

    const std::vector<Offset> &rowPtr() const { return row_ptr_; }
    const std::vector<Index> &colIdx() const { return col_idx_; }
    const std::vector<Value> &values() const { return values_; }

    /** Check all structural invariants; panics with a description if bad. */
    void validate() const;

    /** Structural + value equality. */
    bool operator==(const CsrMatrix &other) const = default;

    /**
     * Approximate equality: same structure, values within `tol` (used by
     * tests comparing the three SpGEMM dataflows, whose accumulation orders
     * differ).
     */
    bool approxEqual(const CsrMatrix &other, double tol = 1e-9) const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Offset> row_ptr_{0};
    std::vector<Index> col_idx_;
    std::vector<Value> values_;
};

} // namespace misam

#endif // MISAM_SPARSE_CSR_HH
