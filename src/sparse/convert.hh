/**
 * @file
 * Conversions between the sparse formats (COO/CSR/CSC/dense) and the
 * transpose operation. All conversions produce canonical (sorted,
 * duplicate-free) outputs.
 */

#ifndef MISAM_SPARSE_CONVERT_HH
#define MISAM_SPARSE_CONVERT_HH

#include "sparse/coo.hh"
#include "sparse/csc.hh"
#include "sparse/csr.hh"
#include "sparse/dense.hh"

namespace misam {

/** COO -> CSR. The input is canonicalized (sorted, duplicates summed). */
CsrMatrix cooToCsr(CooMatrix coo);

/** CSR -> COO (already canonical). */
CooMatrix csrToCoo(const CsrMatrix &csr);

/**
 * CSR -> CSC via a counting transpose-style pass. Large conversions
 * take a cache-blocked route (nonzeros staged per column block so the
 * scatter's write window stays cache-resident); outputs are
 * byte-identical either way, pinned by csrToCscReference.
 */
CscMatrix csrToCsc(const CsrMatrix &csr);

/**
 * The original single-pass cursor-scatter conversion, retained as the
 * test reference for the direct and cache-blocked kernels in
 * csrToCsc (tests/test_simd_dispatch.cpp pins byte-equality).
 */
CscMatrix csrToCscReference(const CsrMatrix &csr);

/** CSC -> CSR. */
CsrMatrix cscToCsr(const CscMatrix &csc);

/** Transpose of a CSR matrix, returned in CSR. */
CsrMatrix transpose(const CsrMatrix &csr);

/** CSR -> dense (for tests on small matrices). */
DenseMatrix csrToDense(const CsrMatrix &csr);

/** Dense -> CSR, dropping exact zeros. */
CsrMatrix denseToCsr(const DenseMatrix &dense);

/**
 * Row slice [row_lo, row_hi) of a CSR matrix (the streaming execution
 * model's A tiles). Column count is preserved.
 */
CsrMatrix sliceRows(const CsrMatrix &m, Index row_lo, Index row_hi);

} // namespace misam

#endif // MISAM_SPARSE_CONVERT_HH
