#include "sparse/coo.hh"

#include <algorithm>

#include "util/logging.hh"

namespace misam {

double
CooMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(entries_.size()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

void
CooMatrix::addEntry(Index row, Index col, Value value)
{
    if (row >= rows_ || col >= cols_)
        panic("CooMatrix::addEntry: index (", row, ",", col,
              ") out of range for ", rows_, "x", cols_);
    entries_.push_back({row, col, value});
}

void
CooMatrix::sortAndCombine()
{
    std::sort(entries_.begin(), entries_.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (out > 0 && entries_[out - 1].row == entries_[i].row &&
            entries_[out - 1].col == entries_[i].col) {
            entries_[out - 1].value += entries_[i].value;
        } else {
            entries_[out++] = entries_[i];
        }
    }
    entries_.resize(out);
}

bool
CooMatrix::isCanonical() const
{
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const auto &prev = entries_[i - 1];
        const auto &cur = entries_[i];
        const bool sorted = prev < cur;
        if (!sorted)
            return false;
    }
    return true;
}

} // namespace misam
