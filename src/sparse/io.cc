#include "sparse/io.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace misam {

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

} // namespace

CooMatrix
readMatrixMarket(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line))
        fatal("MatrixMarket: empty input");

    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    if (tag != "%%MatrixMarket")
        fatal("MatrixMarket: missing %%MatrixMarket banner");
    object = toLower(object);
    format = toLower(format);
    field = toLower(field);
    symmetry = toLower(symmetry);
    if (object != "matrix" || format != "coordinate")
        fatal("MatrixMarket: only 'matrix coordinate' supported, got '",
              object, " ", format, "'");
    const bool pattern = field == "pattern";
    if (!pattern && field != "real" && field != "integer")
        fatal("MatrixMarket: unsupported field '", field, "'");
    const bool symmetric = symmetry == "symmetric";
    if (!symmetric && symmetry != "general")
        fatal("MatrixMarket: unsupported symmetry '", symmetry, "'");

    // Skip comments, read the size line.
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%')
            break;
    }
    std::istringstream size_line(line);
    std::uint64_t rows = 0, cols = 0, nnz = 0;
    if (!(size_line >> rows >> cols >> nnz))
        fatal("MatrixMarket: bad size line '", line, "'");

    CooMatrix coo(static_cast<Index>(rows), static_cast<Index>(cols));
    coo.reserve(symmetric ? nnz * 2 : nnz);
    for (std::uint64_t i = 0; i < nnz; ++i) {
        std::uint64_t r = 0, c = 0;
        double v = 1.0;
        if (!(in >> r >> c))
            fatal("MatrixMarket: truncated at entry ", i);
        if (!pattern && !(in >> v))
            fatal("MatrixMarket: missing value at entry ", i);
        if (r == 0 || c == 0 || r > rows || c > cols)
            fatal("MatrixMarket: 1-based index out of range at entry ", i);
        coo.addEntry(static_cast<Index>(r - 1), static_cast<Index>(c - 1),
                     v);
        if (symmetric && r != c)
            coo.addEntry(static_cast<Index>(c - 1),
                         static_cast<Index>(r - 1), v);
    }
    coo.sortAndCombine();
    return coo;
}

CooMatrix
readMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("MatrixMarket: cannot open '", path, "'");
    return readMatrixMarket(in);
}

void
writeMatrixMarket(std::ostream &out, const CsrMatrix &m)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    for (Index r = 0; r < m.rows(); ++r) {
        auto cols = m.rowCols(r);
        auto vals = m.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k)
            out << (r + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k]
                << '\n';
    }
}

void
writeMatrixMarketFile(const std::string &path, const CsrMatrix &m)
{
    std::ofstream out(path);
    if (!out)
        fatal("MatrixMarket: cannot create '", path, "'");
    writeMatrixMarket(out, m);
}

} // namespace misam
