#include "sparse/generate.hh"

#include <algorithm>
#include <cmath>

#include "sparse/convert.hh"
#include "util/logging.hh"

namespace misam {

namespace {

Value
randomValue(Rng &rng)
{
    // Uniform in [-1, 1) excluding exact zero so generated entries are
    // always structural nonzeros.
    Value v = rng.uniform(-1.0, 1.0);
    return v == 0.0 ? 0.5 : v;
}

/** Build a CSR row by sampling k distinct columns out of `cols`. */
void
appendSampledRow(CooMatrix &coo, Index row, Index cols, Offset k, Rng &rng)
{
    k = std::min<Offset>(k, cols);
    if (k == 0)
        return;
    for (std::uint64_t c : rng.sampleDistinct(cols, k))
        coo.addEntry(row, static_cast<Index>(c), randomValue(rng));
}

} // namespace

CsrMatrix
generateUniform(Index rows, Index cols, double density, Rng &rng)
{
    if (density < 0.0 || density > 1.0)
        fatal("generateUniform: density ", density, " out of [0,1]");
    CooMatrix coo(rows, cols);
    coo.reserve(static_cast<Offset>(density * rows * cols * 1.05));
    for (Index r = 0; r < rows; ++r) {
        // Binomial(cols, density) approximated by a normal for large cols,
        // exact-ish via rounding of a Poisson-like draw for small ones.
        const double expect = density * cols;
        double k_real =
            expect + rng.normal() * std::sqrt(expect * (1.0 - density));
        auto k = static_cast<std::int64_t>(std::llround(k_real));
        k = std::clamp<std::int64_t>(k, 0, cols);
        appendSampledRow(coo, r, cols, static_cast<Offset>(k), rng);
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateBanded(Index rows, Index cols, Index bandwidth, double fill,
               Rng &rng)
{
    CooMatrix coo(rows, cols);
    const double scale =
        rows > 0 ? static_cast<double>(cols) / rows : 1.0;
    for (Index r = 0; r < rows; ++r) {
        const auto center = static_cast<std::int64_t>(r * scale);
        const std::int64_t lo =
            std::max<std::int64_t>(0, center - bandwidth);
        const std::int64_t hi =
            std::min<std::int64_t>(cols - 1, center + bandwidth);
        for (std::int64_t c = lo; c <= hi; ++c)
            if (c == center || rng.bernoulli(fill))
                coo.addEntry(r, static_cast<Index>(c), randomValue(rng));
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateBlockDiagonal(Index rows, Index cols, Index block_size,
                      double block_density, double background_density,
                      Rng &rng)
{
    if (block_size == 0)
        fatal("generateBlockDiagonal: block_size must be positive");
    CooMatrix coo(rows, cols);
    // Dense-ish diagonal blocks.
    for (Index rb = 0; rb < rows; rb += block_size) {
        const Index r_end = std::min<Index>(rb + block_size, rows);
        const Index cb = static_cast<Index>(
            static_cast<std::uint64_t>(rb) * cols / std::max<Index>(rows, 1));
        const Index c_end = std::min<Index>(cb + block_size, cols);
        for (Index r = rb; r < r_end; ++r)
            for (Index c = cb; c < c_end; ++c)
                if (rng.bernoulli(block_density))
                    coo.addEntry(r, c, randomValue(rng));
    }
    // Sparse background.
    if (background_density > 0.0) {
        const auto extra = static_cast<Offset>(
            background_density * static_cast<double>(rows) * cols);
        for (Offset i = 0; i < extra; ++i) {
            const auto r = static_cast<Index>(rng.uniformInt(rows));
            const auto c = static_cast<Index>(rng.uniformInt(cols));
            coo.addEntry(r, c, randomValue(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generatePowerLawGraph(Index n, Offset target_nnz, double alpha, Rng &rng)
{
    if (n == 0)
        fatal("generatePowerLawGraph: empty graph");
    CooMatrix coo(n, n);
    coo.reserve(target_nnz);
    // Draw per-row degrees from the power law, rescale to hit target_nnz.
    std::vector<double> raw_degree(n);
    double total = 0.0;
    for (Index r = 0; r < n; ++r) {
        raw_degree[r] = static_cast<double>(
            rng.powerLaw(std::max<Index>(n / 4, 2), alpha));
        total += raw_degree[r];
    }
    const double scale =
        total > 0.0 ? static_cast<double>(target_nnz) / total : 0.0;
    // Preferential attachment of endpoints: column popularity also follows
    // a power law, realized by sampling columns as n * u^gamma.
    constexpr double gamma = 2.5;
    for (Index r = 0; r < n; ++r) {
        auto degree = static_cast<Offset>(raw_degree[r] * scale + 0.5);
        degree = std::min<Offset>(degree, n);
        for (Offset d = 0; d < degree; ++d) {
            const double u = rng.uniform();
            auto c = static_cast<Index>(std::pow(u, gamma) * n);
            c = std::min<Index>(c, n - 1);
            coo.addEntry(r, c, randomValue(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateRowImbalanced(Index rows, Index cols, double density,
                      double hot_fraction, double imbalance, Rng &rng)
{
    if (hot_fraction <= 0.0 || hot_fraction >= 1.0)
        fatal("generateRowImbalanced: hot_fraction must be in (0,1)");
    if (imbalance < 1.0)
        fatal("generateRowImbalanced: imbalance must be >= 1");
    CooMatrix coo(rows, cols);
    const double avg_len = density * cols;
    const auto hot_rows = std::max<Index>(
        1, static_cast<Index>(hot_fraction * rows));
    const double hot_len = std::min<double>(avg_len * imbalance, cols);
    // Cold rows absorb the remaining budget so overall density holds.
    const double budget = avg_len * rows - hot_len * hot_rows;
    const double cold_len =
        std::max(0.0, budget / std::max<Index>(rows - hot_rows, 1));

    std::vector<Index> order(rows);
    for (Index r = 0; r < rows; ++r)
        order[r] = r;
    rng.shuffle(order);

    for (Index idx = 0; idx < rows; ++idx) {
        const Index r = order[idx];
        const double len = idx < hot_rows ? hot_len : cold_len;
        const auto k = static_cast<Offset>(std::llround(
            std::max(0.0, len + rng.normal() * std::sqrt(len) * 0.25)));
        appendSampledRow(coo, r, cols, k, rng);
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateDiagonal(Index n, Rng &rng)
{
    CooMatrix coo(n, n);
    for (Index i = 0; i < n; ++i)
        coo.addEntry(i, i, randomValue(rng));
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateStructuredPruned(Index rows, Index cols, double density,
                         Index block_size, Rng &rng)
{
    if (block_size == 0)
        fatal("generateStructuredPruned: block_size must be positive");
    CooMatrix coo(rows, cols);
    // Keep whole block_size x block_size tiles with probability = density.
    for (Index rb = 0; rb < rows; rb += block_size) {
        for (Index cb = 0; cb < cols; cb += block_size) {
            if (!rng.bernoulli(density))
                continue;
            const Index r_end = std::min<Index>(rb + block_size, rows);
            const Index c_end = std::min<Index>(cb + block_size, cols);
            for (Index r = rb; r < r_end; ++r)
                for (Index c = cb; c < c_end; ++c)
                    coo.addEntry(r, c, randomValue(rng));
        }
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateRmat(Index n, Offset target_nnz, double pa, double pb, double pc,
             Rng &rng)
{
    if (n == 0)
        fatal("generateRmat: empty graph");
    if (pa <= 0.0 || pb < 0.0 || pc < 0.0 || pa + pb + pc >= 1.0)
        fatal("generateRmat: bad quadrant probabilities");
    // Round n up to a power of two for the recursion; out-of-range
    // samples are folded back by modulo.
    Index levels = 0;
    while ((Index{1} << levels) < n)
        ++levels;

    CooMatrix coo(n, n);
    coo.reserve(target_nnz);
    for (Offset e = 0; e < target_nnz; ++e) {
        Index r = 0;
        Index c = 0;
        for (Index level = 0; level < levels; ++level) {
            const double u = rng.uniform();
            const Index bit = Index{1} << (levels - 1 - level);
            if (u < pa) {
                // top-left: no bits set
            } else if (u < pa + pb) {
                c |= bit;
            } else if (u < pa + pb + pc) {
                r |= bit;
            } else {
                r |= bit;
                c |= bit;
            }
        }
        coo.addEntry(r % n, c % n, randomValue(rng));
    }
    return cooToCsr(std::move(coo));
}

CsrMatrix
generateDenseCsr(Index rows, Index cols, Rng &rng)
{
    std::vector<Offset> row_ptr(rows + 1);
    std::vector<Index> col_idx;
    std::vector<Value> values;
    col_idx.reserve(static_cast<Offset>(rows) * cols);
    values.reserve(static_cast<Offset>(rows) * cols);
    for (Index r = 0; r < rows; ++r) {
        for (Index c = 0; c < cols; ++c) {
            col_idx.push_back(c);
            values.push_back(randomValue(rng));
        }
        row_ptr[r + 1] = values.size();
    }
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

DenseMatrix
generateDense(Index rows, Index cols, Rng &rng)
{
    DenseMatrix m(rows, cols);
    for (Value &v : m.data())
        v = randomValue(rng);
    return m;
}

} // namespace misam
