/**
 * @file
 * 128-bit content fingerprints for sparse matrices.
 *
 * Lives in sparse/ because a fingerprint is a pure function of CsrMatrix
 * content — every layer above sparse (sim workspace caches, core seed
 * derivation, the serving layer's operand cache) keys on it, so it must
 * sit at the bottom of the include DAG rather than in serve/.
 *
 * The serving layer's operand cache (serve/summary_cache.hh) is
 * content-addressed: two CsrMatrix objects with the same shape and the
 * same row_ptr/col_idx/values arrays hash to the same fingerprint, so a
 * weight matrix resubmitted by every inference request is summarized
 * exactly once. The fingerprint also feeds seed derivation in
 * MisamFramework::executeStream — mixing matrix *content* (not just the
 * row count) into the tile-height RNG, so two streams over different
 * matrices never replay the same tile-size sequence by accident.
 *
 * The hash keeps two splitmix64-finalized lanes of running state; bulk
 * array content flows through a four-lane murmur-style inner loop (one
 * xor-rotate-multiply round per word, lanes independent so the four
 * multiply chains overlap) that is folded back into the running state
 * per block. Deterministic across platforms, and wide enough (128 bits)
 * that accidental collisions are not a practical concern for a cache
 * key. It is NOT cryptographic.
 */

#ifndef MISAM_SPARSE_FINGERPRINT_HH
#define MISAM_SPARSE_FINGERPRINT_HH

#include <cstddef>
#include <cstdint>

#include "sparse/csr.hh"

namespace misam {

/** A 128-bit content hash. Value-comparable, usable as a map key. */
struct Fingerprint128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint128 &) const = default;

    /** Fold to 64 bits (both lanes are already well mixed). */
    std::uint64_t
    fold() const
    {
        return hi ^ (lo * 0x9e3779b97f4a7c15ULL);
    }
};

/** Hash functor for unordered containers keyed by Fingerprint128. */
struct FingerprintHash
{
    std::size_t
    operator()(const Fingerprint128 &fp) const
    {
        return static_cast<std::size_t>(fp.fold());
    }
};

/**
 * Incremental two-lane mixer over 64-bit words. Word order matters
 * (by design: permuted arrays are different content).
 */
class FingerprintHasher
{
  public:
    /** Fold one 64-bit word into both lanes. */
    void mix(std::uint64_t word);

    /**
     * Absorb a run of words through the four-lane fast path. Equivalent
     * determinism guarantees as repeated mix(), but ~4x the throughput;
     * the lane fold keeps block boundaries part of the digest, so
     * mixRange(a, 2) and mix(a[0]); mix(a[1]) produce different (equally
     * valid) digests — callers must pick one framing and keep it.
     */
    void mixRange(const std::uint64_t *words, std::size_t n);

    /** Finalize. The hasher may keep absorbing words afterwards. */
    Fingerprint128 digest() const;

  private:
    std::uint64_t h1_ = 0x6a09e667f3bcc908ULL; ///< sqrt(2) bits.
    std::uint64_t h2_ = 0xbb67ae8584caa73bULL; ///< sqrt(3) bits.
    std::uint64_t len_ = 0;
};

/**
 * Fingerprint a CSR matrix's full content: shape, row pointers, column
 * indices, and values (bit-cast, so -0.0 and 0.0 differ — fingerprints
 * track representation, not numeric equivalence). O(rows + nnz) with a
 * far smaller constant than feature summarization.
 */
Fingerprint128 fingerprintMatrix(const CsrMatrix &m);

} // namespace misam

#endif // MISAM_SPARSE_FINGERPRINT_HH
