#include "sparse/spmm.hh"

#include "util/logging.hh"

namespace misam {

DenseMatrix
spmm(const CsrMatrix &a, const DenseMatrix &b)
{
    if (a.cols() != b.rows())
        fatal("spmm: dimension mismatch, A has ", a.cols(),
              " columns but B has ", b.rows(), " rows");
    DenseMatrix c(a.rows(), b.cols());
    const Index n = b.cols();
    for (Index i = 0; i < a.rows(); ++i) {
        auto a_cols = a.rowCols(i);
        auto a_vals = a.rowVals(i);
        Value *c_row = c.data().data() + static_cast<std::size_t>(i) * n;
        for (std::size_t ka = 0; ka < a_cols.size(); ++ka) {
            const Value a_val = a_vals[ka];
            const Value *b_row =
                b.data().data() + static_cast<std::size_t>(a_cols[ka]) * n;
            for (Index j = 0; j < n; ++j)
                c_row[j] += a_val * b_row[j];
        }
    }
    return c;
}

Offset
spmmMultiplyCount(const CsrMatrix &a, Index b_cols)
{
    return a.nnz() * static_cast<Offset>(b_cols);
}

} // namespace misam
