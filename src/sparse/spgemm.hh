/**
 * @file
 * Reference (value-correct) SpGEMM kernels for the three dataflows the
 * paper's §2.1 surveys: inner product, outer product, and row-wise
 * (Gustavson) product. These establish functional ground truth for the
 * accelerator models and give the software baselines something real to
 * time; the cycle-level simulators model the *hardware cost* of the same
 * traversals.
 */

#ifndef MISAM_SPARSE_SPGEMM_HH
#define MISAM_SPARSE_SPGEMM_HH

#include <vector>

#include "sparse/csc.hh"
#include "sparse/csr.hh"

namespace misam {

/** The three classical SpGEMM dataflows. */
enum class SpgemmDataflow { InnerProduct, OuterProduct, RowWise };

/** Human-readable dataflow name ("IP", "OP", "RW"). */
const char *dataflowName(SpgemmDataflow dataflow);

/**
 * Row-wise (Gustavson) product: C(i,:) += A(i,k) * B(k,:). The canonical
 * sparse-accumulator implementation; output reuse, no index matching.
 */
CsrMatrix spgemmRowWise(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Inner product: C(i,j) = <A(i,:), B(:,j)> via sorted-list intersection.
 * Requires B in CSC (as the paper notes) to avoid irregular access.
 */
CsrMatrix spgemmInnerProduct(const CsrMatrix &a, const CscMatrix &b);

/**
 * Outer product: C += A(:,k) (x) B(k,:) accumulated across k. Requires A in
 * CSC; partial products are merged with per-row sparse accumulators.
 */
CsrMatrix spgemmOuterProduct(const CscMatrix &a, const CsrMatrix &b);

/** Dispatch on dataflow, converting formats as required. */
CsrMatrix spgemm(const CsrMatrix &a, const CsrMatrix &b,
                 SpgemmDataflow dataflow = SpgemmDataflow::RowWise);

/**
 * Number of scalar multiply ops an SpGEMM performs (the "effectual flops"):
 * sum over k of nnz(A(:,k)) * nnz(B(k,:)). Drives all the cost models.
 */
Offset spgemmMultiplyCount(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Number of nonzeros in the product's structure, without computing values
 * (symbolic phase). Output-size term of the memory-traffic models.
 */
Offset spgemmOutputNnz(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Compression factor nnz(C) / multiplies: how much accumulation collapses
 * partial products. Low factors penalize outer-product dataflows.
 */
double spgemmCompressionFactor(const CsrMatrix &a, const CsrMatrix &b);

/**
 * Everything the cost models need to know about A·B without computing
 * values, from ONE structure traversal: spgemmMultiplyCount and
 * spgemmOutputNnz each re-walk the operands, and Design 4's job weights
 * re-read every B row length — spgemmSymbolic produces all three at
 * once (values identical by construction; pinned by tests).
 */
struct SymbolicStats
{
    Offset multiplies = 0; ///< == spgemmMultiplyCount(a, b).
    Offset output_nnz = 0; ///< == spgemmOutputNnz(a, b).
    std::vector<Offset> b_row_nnz; ///< b_row_nnz[k] == b.rowNnz(k).
};

/** One-pass symbolic analysis of C = A * B (structure only). */
SymbolicStats spgemmSymbolic(const CsrMatrix &a, const CsrMatrix &b);

} // namespace misam

#endif // MISAM_SPARSE_SPGEMM_HH
