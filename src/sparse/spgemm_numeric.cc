#include "sparse/spgemm_numeric.hh"

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "util/logging.hh"
#include "util/simd.hh"

namespace misam {

CsrMatrix
spgemmNumericFused(const CsrMatrix &a, const CsrMatrix &b,
                   const SymbolicStats *sym)
{
    if (a.cols() != b.rows())
        fatal("spgemmNumericFused: dimension mismatch, A has ",
              a.cols(), " columns but B has ", b.rows(), " rows");
    const Index rows = a.rows();
    const Index cols = b.cols();

    std::vector<Offset> row_ptr(rows + 1, 0);
    if (rows == 0 || a.nnz() == 0 || cols == 0)
        return {rows, cols, std::move(row_ptr), {}, {}};

    SymbolicStats local;
    if (sym == nullptr) {
        local = spgemmSymbolic(a, b);
        sym = &local;
    }

    static_assert(std::is_same_v<Index, std::uint32_t>);
    std::vector<Index> col_idx(sym->output_nnz);
    std::vector<Value> values(sym->output_nnz);
    std::vector<Value> acc(cols, 0.0);
    const std::size_t words =
        (static_cast<std::size_t>(cols) + 63) / 64;
    std::vector<std::uint64_t> bits(words, 0);

    const Offset *a_rp = a.rowPtr().data();
    const Index *a_ci = a.colIdx().data();
    const Value *a_vx = a.values().data();
    const Offset *b_rp = b.rowPtr().data();
    const Index *b_ci = b.colIdx().data();
    const Value *b_vx = b.values().data();

    // Expanding the bitmap costs `words` per emitted row; it beats the
    // sort emit when rows average at least one output nonzero per
    // occupancy word. The gate reads shapes only, so every backend and
    // thread count takes the same path.
    const bool use_expand =
        sym->output_nnz >= static_cast<Offset>(words) * rows;

    // misam-lint: hot-path begin -- per-nonzero multiply/emit loops; output buffers are pre-sized from the symbolic pass so the loops never grow storage

    Offset cursor = 0;
    if (use_expand) {
        for (Index i = 0; i < rows; ++i) {
            const Offset lo = a_rp[i];
            const Offset hi = a_rp[i + 1];
            if (lo != hi) {
                for (Offset p = lo; p < hi; ++p) {
                    const Index k = a_ci[p];
                    const Value av = a_vx[p];
                    for (Offset q = b_rp[k]; q < b_rp[k + 1]; ++q) {
                        const Index j = b_ci[q];
                        acc[j] += av * b_vx[q];
                        bits[j >> 6] |= std::uint64_t{1} << (j & 63);
                    }
                }
                Index *out = col_idx.data() + cursor;
                const std::size_t cnt =
                    simd::expandSetBits(bits.data(), words, 0, out);
                Value *vout = values.data() + cursor;
                for (std::size_t t = 0; t < cnt; ++t) {
                    const Index j = out[t];
                    vout[t] = acc[j];
                    acc[j] = 0.0;
                }
                cursor += static_cast<Offset>(cnt);
            }
            row_ptr[i + 1] = cursor;
        }
        simd::noteExpandRows(rows);
    } else {
        std::vector<Index> touched;
        for (Index i = 0; i < rows; ++i) {
            const Offset lo = a_rp[i];
            const Offset hi = a_rp[i + 1];
            if (lo != hi) {
                for (Offset p = lo; p < hi; ++p) {
                    const Index k = a_ci[p];
                    const Value av = a_vx[p];
                    for (Offset q = b_rp[k]; q < b_rp[k + 1]; ++q) {
                        const Index j = b_ci[q];
                        const std::uint64_t mask = std::uint64_t{1}
                                                   << (j & 63);
                        if ((bits[j >> 6] & mask) == 0) {
                            bits[j >> 6] |= mask;
                            // misam-lint: allow(hot-path-alloc) -- grows to the densest row's occupancy once, then clear() keeps capacity for the rest of the product
                            touched.push_back(j);
                        }
                        acc[j] += av * b_vx[q];
                    }
                }
                std::sort(touched.begin(), touched.end());
                for (const Index j : touched) {
                    col_idx[cursor] = j;
                    values[cursor] = acc[j];
                    acc[j] = 0.0;
                    bits[j >> 6] &=
                        ~(std::uint64_t{1} << (j & 63));
                    ++cursor;
                }
                touched.clear();
            }
            row_ptr[i + 1] = cursor;
        }
    }
    // misam-lint: hot-path end
    if (cursor != sym->output_nnz)
        panic("spgemmNumericFused: symbolic stats disagree with the "
              "product structure");
    return {rows, cols, std::move(row_ptr), std::move(col_idx),
            std::move(values)};
}

} // namespace misam
