/**
 * @file
 * Sparse-matrix x dense-matrix (SpMM) reference kernel. Designs 1-3 of the
 * Misam suite are SpMM engines (B kept uncompressed); this kernel is their
 * functional ground truth.
 */

#ifndef MISAM_SPARSE_SPMM_HH
#define MISAM_SPARSE_SPMM_HH

#include "sparse/csr.hh"
#include "sparse/dense.hh"

namespace misam {

/** C = A * B with sparse A (CSR) and dense row-major B. */
DenseMatrix spmm(const CsrMatrix &a, const DenseMatrix &b);

/** Scalar multiply count for SpMM: nnz(A) * cols(B). */
Offset spmmMultiplyCount(const CsrMatrix &a, Index b_cols);

} // namespace misam

#endif // MISAM_SPARSE_SPMM_HH
