/**
 * @file
 * Fundamental scalar types shared by all sparse-matrix containers.
 */

#ifndef MISAM_SPARSE_TYPES_HH
#define MISAM_SPARSE_TYPES_HH

#include <cstdint>

namespace misam {

/** Row/column index type. 32 bits covers every matrix in the evaluation. */
using Index = std::uint32_t;

/** Nonzero count / offset type (can exceed 2^32 for dense products). */
using Offset = std::uint64_t;

/** Numeric value type (the FPGA designs stream FP32; we model in double). */
using Value = double;

} // namespace misam

#endif // MISAM_SPARSE_TYPES_HH
