/**
 * @file
 * Compressed Sparse Column (CSC) matrix.
 *
 * The inner-product dataflow needs B in CSC (paper §2.1), the outer-product
 * dataflow needs A in CSC, and the column-wise schedulers of Designs 1 and 2
 * traverse A column-major — all of which this format serves.
 */

#ifndef MISAM_SPARSE_CSC_HH
#define MISAM_SPARSE_CSC_HH

#include <span>
#include <vector>

#include "sparse/types.hh"

namespace misam {

/**
 * Tag selecting the non-validating CscMatrix constructor. For kernels
 * whose output satisfies the structural invariants by construction
 * (e.g. the csrToCsc scatter over an already-validated CsrMatrix),
 * where the O(nnz) validate() walk would double the conversion cost.
 */
struct TrustedSource
{
};

/**
 * Sparse matrix in compressed sparse column format; the column-major dual
 * of CsrMatrix with the same invariants transposed.
 */
class CscMatrix
{
  public:
    CscMatrix() = default;

    /** Construct an empty (all-zero) rows x cols matrix. */
    CscMatrix(Index rows, Index cols);

    /** Construct from raw arrays (takes ownership; validates). */
    CscMatrix(Index rows, Index cols, std::vector<Offset> col_ptr,
              std::vector<Index> row_idx, std::vector<Value> values);

    /**
     * Construct from raw arrays without validating. The caller asserts
     * the invariants hold by construction; debug builds still check.
     */
    CscMatrix(TrustedSource, Index rows, Index cols,
              std::vector<Offset> col_ptr, std::vector<Index> row_idx,
              std::vector<Value> values);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Offset nnz() const { return values_.size(); }

    /** Number of nonzeros in column c. */
    Offset colNnz(Index c) const { return col_ptr_[c + 1] - col_ptr_[c]; }

    /** Row indices of column c. */
    std::span<const Index> colRows(Index c) const;

    /** Values of column c. */
    std::span<const Value> colVals(Index c) const;

    const std::vector<Offset> &colPtr() const { return col_ptr_; }
    const std::vector<Index> &rowIdx() const { return row_idx_; }
    const std::vector<Value> &values() const { return values_; }

    /** Check all structural invariants; panics with a description if bad. */
    void validate() const;

    bool operator==(const CscMatrix &other) const = default;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Offset> col_ptr_{0};
    std::vector<Index> row_idx_;
    std::vector<Value> values_;
};

} // namespace misam

#endif // MISAM_SPARSE_CSC_HH
