/**
 * @file
 * Fused numeric SpGEMM: the value-carrying counterpart of the fused
 * symbolic pass (sparse/spgemm.hh: spgemmSymbolic).
 *
 * spgemmRowWise is the functional ground truth but pays for it — vector
 * growth on every output row, a vector<bool> occupancy array, and a
 * std::sort per row. This kernel computes the same Gustavson product
 * over a dense per-row value accumulator with a word-packed occupancy
 * bitmap, reserves the output arrays exactly from the symbolic
 * output_nnz, and emits each row in column order by expanding the
 * bitmap's set bits (simd::expandSetBits) instead of sorting.
 *
 * Determinism contract: the product is byte-identical to
 * spgemmRowWise(a, b) on every backend and thread count. Values
 * accumulate into each output cell in the same (A-nonzero, B-nonzero)
 * traversal order, and both emit paths produce ascending columns, so
 * neither the IEEE sums nor the structure can differ. The emit-path
 * choice is a pure function of the operand shapes, never of the backend
 * (tests/test_numeric_spgemm.cpp pins all of this).
 */

#ifndef MISAM_SPARSE_SPGEMM_NUMERIC_HH
#define MISAM_SPARSE_SPGEMM_NUMERIC_HH

#include "sparse/csr.hh"
#include "sparse/spgemm.hh"

namespace misam {

/**
 * C = A * B with dense accumulator blocks and bitmap occupancy.
 * `sym`, when non-null, must be spgemmSymbolic(a, b) (typically from
 * cachedSpgemmSymbolic) and is used for the exact output reservation;
 * null recomputes it. Byte-identical to spgemmRowWise(a, b).
 */
CsrMatrix spgemmNumericFused(const CsrMatrix &a, const CsrMatrix &b,
                             const SymbolicStats *sym = nullptr);

} // namespace misam

#endif // MISAM_SPARSE_SPGEMM_NUMERIC_HH
