/**
 * @file
 * Row-major dense matrix used as the D (dense) operand in SpMM workloads
 * (e.g. the 512-column right-hand sides of the HS x D category) and as the
 * reference result container in tests.
 */

#ifndef MISAM_SPARSE_DENSE_HH
#define MISAM_SPARSE_DENSE_HH

#include <vector>

#include "sparse/types.hh"
#include "util/logging.hh"

namespace misam {

/** Row-major dense matrix of Value. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    /** Construct a zero-initialized rows x cols matrix. */
    DenseMatrix(Index rows, Index cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) * cols, 0.0)
    {
    }

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Element access. */
    Value &
    at(Index r, Index c)
    {
        checkBounds(r, c);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    /** Element access (const). */
    Value
    at(Index r, Index c) const
    {
        checkBounds(r, c);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    /** Raw row-major storage. */
    const std::vector<Value> &data() const { return data_; }
    std::vector<Value> &data() { return data_; }

    /** Number of stored nonzero elements (for density checks in tests). */
    Offset countNonzeros() const;

    bool operator==(const DenseMatrix &other) const = default;

  private:
    void
    checkBounds(Index r, Index c) const
    {
        if (r >= rows_ || c >= cols_)
            panic("DenseMatrix: index (", r, ",", c, ") out of range for ",
                  rows_, "x", cols_);
    }

    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Value> data_;
};

inline Offset
DenseMatrix::countNonzeros() const
{
    Offset n = 0;
    for (Value v : data_)
        if (v != 0.0)
            ++n;
    return n;
}

} // namespace misam

#endif // MISAM_SPARSE_DENSE_HH
