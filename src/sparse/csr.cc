#include "sparse/csr.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace misam {

CsrMatrix::CsrMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0)
{
}

CsrMatrix::CsrMatrix(Index rows, Index cols, std::vector<Offset> row_ptr,
                     std::vector<Index> col_idx, std::vector<Value> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values))
{
    validate();
}

CsrMatrix::CsrMatrix(const CsrMatrix &other)
    : rows_(other.rows_), cols_(other.cols_), row_ptr_(other.row_ptr_),
      col_idx_(other.col_idx_), values_(other.values_)
{
    std::uint64_t hi, lo;
    if (other.cachedFingerprint(&hi, &lo))
        storeFingerprint(hi, lo);
}

CsrMatrix &
CsrMatrix::operator=(const CsrMatrix &other)
{
    if (this == &other)
        return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    row_ptr_ = other.row_ptr_;
    col_idx_ = other.col_idx_;
    values_ = other.values_;
    std::uint64_t hi, lo;
    if (other.cachedFingerprint(&hi, &lo))
        storeFingerprint(hi, lo);
    else
        fp_ready_.store(false, std::memory_order_release);
    return *this;
}

CsrMatrix::CsrMatrix(CsrMatrix &&other) noexcept
    : rows_(other.rows_), cols_(other.cols_),
      row_ptr_(std::move(other.row_ptr_)),
      col_idx_(std::move(other.col_idx_)),
      values_(std::move(other.values_))
{
    std::uint64_t hi, lo;
    if (other.cachedFingerprint(&hi, &lo))
        storeFingerprint(hi, lo);
    // The moved-from matrix holds unspecified vectors; its stale hash
    // must not survive.
    other.fp_ready_.store(false, std::memory_order_release);
}

CsrMatrix &
CsrMatrix::operator=(CsrMatrix &&other) noexcept
{
    if (this == &other)
        return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    row_ptr_ = std::move(other.row_ptr_);
    col_idx_ = std::move(other.col_idx_);
    values_ = std::move(other.values_);
    std::uint64_t hi, lo;
    if (other.cachedFingerprint(&hi, &lo))
        storeFingerprint(hi, lo);
    else
        fp_ready_.store(false, std::memory_order_release);
    other.fp_ready_.store(false, std::memory_order_release);
    return *this;
}

double
CsrMatrix::density() const
{
    if (rows_ == 0 || cols_ == 0)
        return 0.0;
    return static_cast<double>(nnz()) /
           (static_cast<double>(rows_) * static_cast<double>(cols_));
}

std::span<const Index>
CsrMatrix::rowCols(Index r) const
{
    return {col_idx_.data() + row_ptr_[r],
            static_cast<std::size_t>(rowNnz(r))};
}

std::span<const Value>
CsrMatrix::rowVals(Index r) const
{
    return {values_.data() + row_ptr_[r],
            static_cast<std::size_t>(rowNnz(r))};
}

void
CsrMatrix::validate() const
{
    if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1)
        panic("CsrMatrix: rowPtr size ", row_ptr_.size(), " != rows+1 (",
              rows_ + 1, ")");
    if (row_ptr_.front() != 0)
        panic("CsrMatrix: rowPtr[0] != 0");
    if (row_ptr_.back() != values_.size())
        panic("CsrMatrix: rowPtr back ", row_ptr_.back(), " != nnz ",
              values_.size());
    if (col_idx_.size() != values_.size())
        panic("CsrMatrix: colIdx/values size mismatch");
    for (Index r = 0; r < rows_; ++r) {
        if (row_ptr_[r] > row_ptr_[r + 1])
            panic("CsrMatrix: rowPtr not monotone at row ", r);
        for (Offset k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
            if (col_idx_[k] >= cols_)
                panic("CsrMatrix: column ", col_idx_[k],
                      " out of range in row ", r);
            if (k > row_ptr_[r] && col_idx_[k - 1] >= col_idx_[k])
                panic("CsrMatrix: columns not strictly increasing in row ",
                      r);
        }
    }
}

bool
CsrMatrix::approxEqual(const CsrMatrix &other, double tol) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_ ||
        row_ptr_ != other.row_ptr_ || col_idx_ != other.col_idx_) {
        return false;
    }
    for (std::size_t i = 0; i < values_.size(); ++i) {
        const double scale =
            std::max({1.0, std::abs(values_[i]), std::abs(other.values_[i])});
        if (std::abs(values_[i] - other.values_[i]) > tol * scale)
            return false;
    }
    return true;
}

} // namespace misam
