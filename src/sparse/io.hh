/**
 * @file
 * Matrix Market (.mtx) coordinate-format I/O.
 *
 * Supports the subset of the format SuiteSparse matrices use: coordinate
 * storage, real/integer/pattern fields, general or symmetric symmetry.
 * Lets users run Misam on real SuiteSparse downloads in place of the
 * synthetic proxies.
 */

#ifndef MISAM_SPARSE_IO_HH
#define MISAM_SPARSE_IO_HH

#include <iosfwd>
#include <string>

#include "sparse/coo.hh"
#include "sparse/csr.hh"

namespace misam {

/** Parse a Matrix Market stream into COO; throws via fatal() on bad input. */
CooMatrix readMatrixMarket(std::istream &in);

/** Read a Matrix Market file; fatal() if it cannot be opened or parsed. */
CooMatrix readMatrixMarketFile(const std::string &path);

/** Write a matrix as Matrix Market general/real coordinate format. */
void writeMatrixMarket(std::ostream &out, const CsrMatrix &m);

/** Write to a file; fatal() if the file cannot be created. */
void writeMatrixMarketFile(const std::string &path, const CsrMatrix &m);

} // namespace misam

#endif // MISAM_SPARSE_IO_HH
