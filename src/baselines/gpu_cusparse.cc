#include "baselines/gpu_cusparse.hh"

#include <algorithm>
#include <cmath>

#include "features/features.hh"
#include "sparse/spgemm.hh"
#include "util/logging.hh"

namespace misam {

namespace {

constexpr double kBytesPerEntry = 8.0;

BaselineResult
finish(double kernel_seconds, double mults, double power,
       const GpuConfig &cfg)
{
    BaselineResult res;
    res.exec_seconds = kernel_seconds + cfg.launch_seconds;
    res.energy_joules = res.exec_seconds * power;
    if (res.exec_seconds > 0.0)
        res.effective_gflops = mults / res.exec_seconds / 1e9;
    return res;
}

/**
 * Irregularity penalty of sparse CSR rows on GPU warps: short rows leave
 * most of a warp idle, imbalanced rows serialize blocks.
 */
double
warpEfficiency(double avg_row_nnz, double imbalance)
{
    const double occupancy = avg_row_nnz / (avg_row_nnz + 32.0);
    const double balance = 1.0 / (1.0 + 0.10 * std::max(0.0, imbalance - 1.0));
    return std::clamp(0.02 + 0.98 * occupancy * balance, 0.02, 1.0);
}

} // namespace

BaselineResult
gpuCusparseSpgemm(const CsrMatrix &a, const CsrMatrix &b,
                  const GpuConfig &cfg)
{
    return gpuCusparseSpgemm(a, b, spgemmSymbolic(a, b), cfg);
}

BaselineResult
gpuCusparseSpgemm(const CsrMatrix &a, const CsrMatrix &b,
                  const SymbolicStats &symbolic, const GpuConfig &cfg)
{
    if (a.cols() != b.rows())
        fatal("gpuCusparseSpgemm: dimension mismatch");
    const auto mults = static_cast<double>(symbolic.multiplies);
    const auto nnz_c = static_cast<double>(symbolic.output_nnz);
    const double avg_row_b =
        b.rows() > 0 ? static_cast<double>(b.nnz()) / b.rows() : 0.0;
    const MatrixStats stats = computeMatrixStats(a);

    const double eff = warpEfficiency(avg_row_b, stats.row.imbalance);
    const double compute = mults / (cfg.peak_sparse_gflops * 1e9 * eff);

    // cusparseSpGEMM materializes an intermediate product before
    // compression: the hash/merge phase re-reads partials.
    const double traffic = (static_cast<double>(a.nnz()) +
                            static_cast<double>(b.nnz()) + nnz_c +
                            2.0 * mults * 0.25) *
                           kBytesPerEntry;
    const double memory = traffic / (cfg.dram_bw_gbps * 1e9);
    return finish(std::max(compute, memory), mults,
                  cfg.power_sparse_watts, cfg);
}

BaselineResult
gpuCusparseSpmm(const CsrMatrix &a, Index b_cols, const GpuConfig &cfg)
{
    const double mults =
        static_cast<double>(a.nnz()) * static_cast<double>(b_cols);
    const double density = a.density();

    // Dense-ish SpMM approaches the dense roofline; highly sparse A
    // degrades toward the irregular-kernel roofline.
    const double dense_frac = std::clamp(density * 4.0, 0.0, 1.0);
    const double roofline = cfg.peak_sparse_gflops * 1e9 +
                            dense_frac * (cfg.peak_dense_gflops -
                                          cfg.peak_sparse_gflops) *
                                1e9;
    const MatrixStats stats = computeMatrixStats(a);
    const double avg_row = a.rows() > 0
                               ? static_cast<double>(a.nnz()) / a.rows()
                               : 0.0;
    const double eff = warpEfficiency(avg_row, stats.row.imbalance);
    const double compute = mults / (roofline * std::max(eff, 0.3));

    const double traffic = (static_cast<double>(a.nnz()) * 2.0 +
                            static_cast<double>(a.cols()) * b_cols +
                            static_cast<double>(a.rows()) * b_cols) *
                           4.0;
    const double memory = traffic / (cfg.dram_bw_gbps * 1e9);
    const double power = cfg.power_sparse_watts +
                         dense_frac * (cfg.power_dense_watts -
                                       cfg.power_sparse_watts);
    return finish(std::max(compute, memory), mults, power, cfg);
}

} // namespace misam
