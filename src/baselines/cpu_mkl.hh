/**
 * @file
 * Analytical cost model of Intel MKL SpGEMM/SpMM on the paper's CPU
 * baseline (Core i9-11980HK, 8 cores, 32 GB).
 *
 * The model is a roofline over effectual multiplies and memory traffic
 * with a sparsity-dependent per-multiply cost: dense-ish inner loops
 * vectorize well, while highly sparse rows degenerate into gather-heavy,
 * cache-missing traversals. Constants are set so the relative Misam/CPU
 * ratios land in the regime Figure 10 reports (Misam ~5-20x faster on
 * sparse categories, CPU competitive only on small dense work).
 */

#ifndef MISAM_BASELINES_CPU_MKL_HH
#define MISAM_BASELINES_CPU_MKL_HH

#include "sparse/csr.hh"

namespace misam {

struct SymbolicStats;

/** Modeled CPU platform parameters. */
struct CpuConfig
{
    int cores = 8;
    double freq_ghz = 4.5;
    double dram_bw_gbps = 45.0;
    double power_watts = 45.0;
    /** Fused multiply-adds per core-cycle on well-vectorized streams. */
    double peak_flops_per_cycle = 8.0;
    /** Fixed per-call setup (format inspection, thread fork). */
    double setup_seconds = 30e-6;
};

/** Execution time and energy of one modeled baseline run. */
struct BaselineResult
{
    double exec_seconds = 0.0;
    double energy_joules = 0.0;
    double effective_gflops = 0.0; ///< mults / time / 1e9.
};

/** Model MKL's SpGEMM (both operands sparse CSR). */
BaselineResult cpuMklSpgemm(const CsrMatrix &a, const CsrMatrix &b,
                            const CpuConfig &cfg = {});

/**
 * As above with a caller-held symbolic analysis (spgemmSymbolic(a, b)),
 * so a router evaluating every device shares one A·B traversal instead
 * of re-walking the structure per baseline.
 */
BaselineResult cpuMklSpgemm(const CsrMatrix &a, const CsrMatrix &b,
                            const SymbolicStats &symbolic,
                            const CpuConfig &cfg = {});

/** Model MKL's SpMM (sparse A, dense B of b_cols columns). */
BaselineResult cpuMklSpmm(const CsrMatrix &a, Index b_cols,
                          const CpuConfig &cfg = {});

} // namespace misam

#endif // MISAM_BASELINES_CPU_MKL_HH
