#include "baselines/cpu_mkl.hh"

#include <algorithm>
#include <cmath>

#include "sparse/spgemm.hh"
#include "util/logging.hh"

namespace misam {

namespace {

constexpr double kBytesPerEntry = 8.0;

BaselineResult
finish(double seconds, double mults, const CpuConfig &cfg)
{
    BaselineResult res;
    res.exec_seconds = seconds + cfg.setup_seconds;
    res.energy_joules = res.exec_seconds * cfg.power_watts;
    if (res.exec_seconds > 0.0)
        res.effective_gflops = mults / res.exec_seconds / 1e9;
    return res;
}

/**
 * Vectorization efficiency of dense-streaming SpMM inner loops as a
 * function of the run length: long dense rows stream near a sizable
 * fraction of peak.
 */
double
vectorEfficiency(double avg_run)
{
    // ~3% efficiency at run length 1, saturating toward 25% of peak
    // (MKL SpMM reaches tens of GFLOP/s on this CPU class).
    const double eff = avg_run / (avg_run + 24.0);
    return std::clamp(0.03 + 0.22 * eff, 0.03, 0.25);
}

/**
 * Effective efficiency of MKL's hash/SPA SpGEMM inner loop. Sparse-
 * sparse accumulation is gather/scatter-dominated: measured MKL SpGEMM
 * throughput on this CPU class is single-digit GFLOP/s even on
 * well-structured inputs and fractions of one on hyper-sparse ones.
 */
double
spgemmEfficiency(double avg_run)
{
    const double eff = avg_run / (avg_run + 48.0);
    return std::clamp(0.002 + 0.028 * eff, 0.002, 0.03);
}

} // namespace

BaselineResult
cpuMklSpgemm(const CsrMatrix &a, const CsrMatrix &b, const CpuConfig &cfg)
{
    return cpuMklSpgemm(a, b, spgemmSymbolic(a, b), cfg);
}

BaselineResult
cpuMklSpgemm(const CsrMatrix &a, const CsrMatrix &b,
             const SymbolicStats &symbolic, const CpuConfig &cfg)
{
    if (a.cols() != b.rows())
        fatal("cpuMklSpgemm: dimension mismatch");
    const auto mults = static_cast<double>(symbolic.multiplies);
    const auto nnz_c = static_cast<double>(symbolic.output_nnz);
    const double avg_row_b =
        b.rows() > 0 ? static_cast<double>(b.nnz()) / b.rows() : 0.0;

    const double peak =
        cfg.cores * cfg.freq_ghz * 1e9 * cfg.peak_flops_per_cycle;
    const double compute =
        mults / (peak * spgemmEfficiency(avg_row_b));

    // Gustavson traffic: both operands once; hash/SPA-accumulated C rows
    // written once; B rows re-fetched when the matrix exceeds LLC (24MB).
    const double b_bytes = static_cast<double>(b.nnz()) * kBytesPerEntry;
    const double llc = 24e6;
    const double b_refetch =
        b_bytes > llc ? (mults - static_cast<double>(b.nnz())) *
                            kBytesPerEntry * (1.0 - llc / b_bytes)
                      : 0.0;
    const double traffic =
        (static_cast<double>(a.nnz()) + static_cast<double>(b.nnz()) +
         nnz_c) *
            kBytesPerEntry +
        b_refetch;
    const double memory = traffic / (cfg.dram_bw_gbps * 1e9);

    return finish(std::max(compute, memory), mults, cfg);
}

BaselineResult
cpuMklSpmm(const CsrMatrix &a, Index b_cols, const CpuConfig &cfg)
{
    const double mults =
        static_cast<double>(a.nnz()) * static_cast<double>(b_cols);
    const double peak =
        cfg.cores * cfg.freq_ghz * 1e9 * cfg.peak_flops_per_cycle;
    // Dense-B inner loops vectorize on the row length of B.
    const double compute =
        mults / (peak * vectorEfficiency(static_cast<double>(b_cols)));

    const double traffic =
        (static_cast<double>(a.nnz()) +
         static_cast<double>(a.cols()) * b_cols +
         static_cast<double>(a.rows()) * b_cols) *
        4.0;
    const double memory = traffic / (cfg.dram_bw_gbps * 1e9);
    return finish(std::max(compute, memory), mults, cfg);
}

} // namespace misam
