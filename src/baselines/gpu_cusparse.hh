/**
 * @file
 * Analytical cost model of cuSPARSE on the paper's GPU baseline (NVIDIA
 * RTX A6000: 84 SMs, 768 GB/s GDDR6).
 *
 * Shape requirements from Figure 10/11: the GPU dominates dense work
 * (HS x D, MS x D), loses moderately on HS x HS (1.37x), and loses badly
 * on MS x MS (11.26x) because structured pruning produces sparsity
 * patterns hostile to its memory coalescing and tensor cores. The model
 * is a roofline with a sparsity- and pattern-dependent efficiency plus a
 * fixed kernel-launch/setup overhead that punishes small kernels.
 */

#ifndef MISAM_BASELINES_GPU_CUSPARSE_HH
#define MISAM_BASELINES_GPU_CUSPARSE_HH

#include "baselines/cpu_mkl.hh"
#include "sparse/csr.hh"

namespace misam {

/** Modeled GPU platform parameters. */
struct GpuConfig
{
    double dram_bw_gbps = 768.0;
    double peak_sparse_gflops = 40.0;   ///< Effective cusparseSpGEMM roofline for
                                        ///< irregular sparse kernels.
    double peak_dense_gflops = 38000.0; ///< Dense/tensor-core roofline.
    double launch_seconds = 25e-6;      ///< Kernel launch + cusparse
                                        ///< analysis overhead.
    double power_sparse_watts = 180.0;
    double power_dense_watts = 280.0;
};

/** Model cuSPARSE SpGEMM (cusparseSpGEMM, both operands sparse). */
BaselineResult gpuCusparseSpgemm(const CsrMatrix &a, const CsrMatrix &b,
                                 const GpuConfig &cfg = {});

/**
 * As above with a caller-held symbolic analysis (spgemmSymbolic(a, b));
 * see the cpuMklSpgemm overload for the sharing rationale.
 */
BaselineResult gpuCusparseSpgemm(const CsrMatrix &a, const CsrMatrix &b,
                                 const SymbolicStats &symbolic,
                                 const GpuConfig &cfg = {});

/** Model cuSPARSE SpMM (sparse A, dense B of b_cols columns). */
BaselineResult gpuCusparseSpmm(const CsrMatrix &a, Index b_cols,
                               const GpuConfig &cfg = {});

} // namespace misam

#endif // MISAM_BASELINES_GPU_CUSPARSE_HH
